//! Differential suite for the TCP transports: a cluster of workers exchanging
//! frames over real loopback sockets must be bit-identical to the sequential
//! reference executor — for PageRank, SSSP and WCC, on **both** TCP backends:
//!
//! * [`SocketPlane`] — blocking, one reader thread per peer,
//! * [`PollPlane`] — event-driven, one readiness loop per endpoint (also run
//!   once with the portable [`SpinPoller`] forced, so the conformance holds
//!   through the readiness-trait seam, not just the Linux `poll(2)` shim).
//!
//! Each worker runs on its own thread with its own plane endpoint (the
//! multi-process variant of the same wiring lives in `graphh-bench`'s
//! `graphh-node` binary and its `multiprocess` test); every broadcast crosses
//! the wire length-prefix-encoded and re-decoded, so this pins the entire
//! TCP path: handshake, frame codec, reader loop, inbox discipline.

use graphh_cluster::ClusterConfig;
use graphh_core::exec::ExecutionPlan;
use graphh_core::registry::{ProgramContext, ProgramOptions, PROGRAMS};
use graphh_core::{
    DirectionMode, DirectionOptimizingBfs, GabProgram, GraphHConfig, GraphHEngine, PageRank,
    SequentialExecutor, Sssp, Wcc,
};
use graphh_graph::generators::{GraphGenerator, RmatGenerator};
use graphh_graph::GraphBuilder;
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use graphh_runtime::poll::SpinPoller;
use graphh_runtime::socket::DEFAULT_ESTABLISH_TIMEOUT;
use graphh_runtime::{run_worker, BoundTcpPlane, BroadcastPlane, SuperstepBarrier, TcpPlaneKind};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;

const SERVERS: u32 = 3;

/// Which TCP backend (and readiness shim) a run drives.
#[derive(Clone, Copy, Debug)]
enum Plane {
    Socket,
    Poll,
    PollSpin,
}

/// Bind one endpoint per server for `plane`, then establish and run the
/// worker loop on scoped threads; returns each server's final replica values.
fn run_over_tcp(
    plane: Plane,
    config: &GraphHConfig,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
) -> Vec<Vec<f64>> {
    let plan = ExecutionPlan::prepare(config, partitioned, program).expect("plan");
    let num_servers = config.cluster.num_servers;

    let kind = match plane {
        Plane::Socket => TcpPlaneKind::Socket,
        Plane::Poll | Plane::PollSpin => TcpPlaneKind::Poll,
    };
    let bound: Vec<BoundTcpPlane> = (0..num_servers)
        .map(|sid| BoundTcpPlane::bind(kind, sid, num_servers, "127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();

    let mut outputs: Vec<(u32, Vec<f64>)> = thread::scope(|scope| {
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let addrs = &addrs;
                let plan = &plan;
                scope.spawn(move || {
                    let mut endpoint: Box<dyn BroadcastPlane> = match (plane, b) {
                        // The spin-poller run pins conformance through the
                        // readiness-trait seam itself.
                        (Plane::PollSpin, BoundTcpPlane::Poll(b)) => Box::new(
                            b.establish_with(
                                addrs,
                                DEFAULT_ESTABLISH_TIMEOUT,
                                Box::new(SpinPoller::new()),
                            )
                            .expect("establish"),
                        ),
                        (_, b) => b.establish(addrs).expect("establish"),
                    };
                    // Each process-like worker has a trivial local barrier;
                    // cross-server lockstep comes from the plane's
                    // end-of-superstep framing, exactly as in a real
                    // multi-process deployment.
                    let barrier = SuperstepBarrier::new(1);
                    let (metrics_tx, _metrics_rx) = channel();
                    let sid = endpoint.server_id();
                    let output = run_worker(
                        config,
                        plan,
                        partitioned,
                        program,
                        sid,
                        endpoint.as_mut(),
                        &barrier,
                        &metrics_tx,
                    )
                    .expect("worker");
                    (sid, output.values)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    outputs.sort_by_key(|&(sid, _)| sid);
    outputs.into_iter().map(|(_, values)| values).collect()
}

fn assert_tcp_matches_sequential(
    plane: Plane,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    what: &str,
) {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let sequential =
        GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()))
            .run(partitioned, program)
            .expect("sequential run");
    let replicas = run_over_tcp(plane, &config, partitioned, program);
    assert_eq!(replicas.len() as u32, SERVERS);
    for (sid, values) in replicas.iter().enumerate() {
        assert_eq!(
            values.len(),
            sequential.values.len(),
            "{what}: server {sid}"
        );
        for (v, (x, y)) in values.iter().zip(&sequential.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: server {sid} vertex {v} diverged over {plane:?} TCP ({x} vs {y})"
            );
        }
    }
}

fn pagerank_workload() -> PartitionedGraph {
    let g = RmatGenerator::new(8, 6).generate(2017);
    Spe::partition(&g, &SpeConfig::with_tile_count("tcp", &g, 9)).unwrap()
}

fn sssp_workload() -> (PartitionedGraph, Sssp) {
    let g = RmatGenerator::new(8, 5).generate(42);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("tcp", &g, 9)).unwrap();
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    (p, Sssp::new(source))
}

fn wcc_workload() -> PartitionedGraph {
    let base = RmatGenerator::new(7, 4).simplified().generate(7);
    let mut b = GraphBuilder::new()
        .with_num_vertices(base.num_vertices())
        .symmetric(true);
    for e in base.edges().iter() {
        b.add_edge(e);
    }
    let sym = b.build().unwrap();
    Spe::partition(&sym, &SpeConfig::with_tile_count("tcp", &sym, 9)).unwrap()
}

#[test]
fn tcp_pagerank_is_bit_identical_to_sequential() {
    assert_tcp_matches_sequential(
        Plane::Socket,
        &pagerank_workload(),
        &PageRank::new(8),
        "pagerank",
    );
}

#[test]
fn tcp_sssp_is_bit_identical_to_sequential() {
    let (p, sssp) = sssp_workload();
    assert_tcp_matches_sequential(Plane::Socket, &p, &sssp, "sssp");
}

#[test]
fn tcp_wcc_is_bit_identical_to_sequential() {
    assert_tcp_matches_sequential(Plane::Socket, &wcc_workload(), &Wcc::new(), "wcc");
}

#[test]
fn poll_pagerank_is_bit_identical_to_sequential() {
    assert_tcp_matches_sequential(
        Plane::Poll,
        &pagerank_workload(),
        &PageRank::new(8),
        "pagerank",
    );
}

#[test]
fn poll_sssp_is_bit_identical_to_sequential() {
    let (p, sssp) = sssp_workload();
    assert_tcp_matches_sequential(Plane::Poll, &p, &sssp, "sssp");
}

#[test]
fn poll_wcc_is_bit_identical_to_sequential() {
    assert_tcp_matches_sequential(Plane::Poll, &wcc_workload(), &Wcc::new(), "wcc");
}

/// One workload through the portable spin poller: the conformance contract
/// must hold for any correct [`graphh_runtime::ReadinessPoller`], not just
/// the platform shim.
#[test]
fn poll_with_spin_poller_is_bit_identical_to_sequential() {
    assert_tcp_matches_sequential(
        Plane::PollSpin,
        &pagerank_workload(),
        &PageRank::new(8),
        "pagerank-spin",
    );
}

/// Every registry program — including the formerly orphaned `bfs` and
/// `degree-centrality` and the new `bfs-dopt` / `labelprop` kernels — is
/// bit-identical to the sequential reference over every TCP backend and the
/// readiness-trait seam.
#[test]
fn every_registry_program_is_bit_identical_over_every_plane() {
    let dir = RmatGenerator::new(7, 5).generate(2017);
    let pdir = Spe::partition(&dir, &SpeConfig::with_tile_count("tcp", &dir, 8)).unwrap();
    let base = RmatGenerator::new(7, 4).simplified().generate(2017);
    let mut b = GraphBuilder::new()
        .with_num_vertices(base.num_vertices())
        .symmetric(true);
    for e in base.edges().iter() {
        b.add_edge(e);
    }
    let sym = b.build().unwrap();
    let psym = Spe::partition(&sym, &SpeConfig::with_tile_count("tcp", &sym, 8)).unwrap();

    for spec in PROGRAMS {
        let (graph, part) = if spec.symmetrize_input {
            (&sym, &psym)
        } else {
            (&dir, &pdir)
        };
        let mut opts = ProgramOptions::new();
        if spec.accepts("supersteps") {
            opts.set("supersteps", "6");
        }
        let program = spec
            .build(&ProgramContext::new(graph.out_degrees()), &opts)
            .unwrap();
        for plane in [Plane::Socket, Plane::Poll, Plane::PollSpin] {
            assert_tcp_matches_sequential(
                plane,
                part,
                program.as_ref(),
                &format!("{} over {plane:?}", spec.name),
            );
        }
    }
}

/// The direction axis crosses the wire unchanged: forced-pull, forced-push
/// and auto-switching BFS runs over real TCP all land bit-identical to the
/// forced-pull sequential reference — push/pull is an engine-local decision
/// and never alters the broadcast bytes (docs/WIRE.md).
#[test]
fn direction_modes_are_bit_identical_over_tcp() {
    let g = RmatGenerator::new(7, 5).generate(42);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("tcp", &g, 8)).unwrap();
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    // α=β=2 so the auto run genuinely switches on this small graph.
    let program = DirectionOptimizingBfs::with_thresholds(source, 2, 2);

    let reference = GraphHEngine::with_executor(
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
            .with_direction_mode(DirectionMode::ForcePull),
        Arc::new(SequentialExecutor::new()),
    )
    .run(&p, &program)
    .expect("sequential reference");

    for mode in [
        DirectionMode::ForcePull,
        DirectionMode::ForcePush,
        DirectionMode::Auto,
    ] {
        let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
            .with_direction_mode(mode);
        for plane in [Plane::Socket, Plane::Poll] {
            let replicas = run_over_tcp(plane, &config, &p, &program);
            for (sid, values) in replicas.iter().enumerate() {
                assert_eq!(values.len(), reference.values.len());
                for (v, (x, y)) in values.iter().zip(&reference.values).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "bfs-dopt {mode:?} over {plane:?}: server {sid} vertex {v} diverged"
                    );
                }
            }
        }
    }
}
