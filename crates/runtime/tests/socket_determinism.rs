//! Differential suite for the TCP transport: a cluster of workers exchanging
//! frames over real loopback sockets must be bit-identical to the sequential
//! reference executor — for PageRank, SSSP and WCC.
//!
//! Each worker runs on its own thread with its own [`SocketPlane`] endpoint
//! (the multi-process variant of the same wiring lives in `graphh-bench`'s
//! `graphh-node` binary and its `multiprocess` test); every broadcast crosses
//! the wire length-prefix-encoded and re-decoded, so this pins the entire
//! socket path: handshake, frame codec, reader threads, inbox discipline.

use graphh_cluster::ClusterConfig;
use graphh_core::exec::ExecutionPlan;
use graphh_core::{
    GabProgram, GraphHConfig, GraphHEngine, PageRank, SequentialExecutor, Sssp, Wcc,
};
use graphh_graph::generators::{GraphGenerator, RmatGenerator};
use graphh_graph::GraphBuilder;
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use graphh_runtime::{run_worker, BroadcastPlane, SocketPlane, SuperstepBarrier};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;

const SERVERS: u32 = 3;

/// Run `program` with every server on its own thread and its own TCP
/// endpoint; returns each server's final replica values.
fn run_over_tcp(
    config: &GraphHConfig,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
) -> Vec<Vec<f64>> {
    let plan = ExecutionPlan::prepare(config, partitioned, program).expect("plan");
    let num_servers = config.cluster.num_servers;
    let bound: Vec<_> = (0..num_servers)
        .map(|sid| SocketPlane::bind(sid, num_servers, "127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();

    let mut outputs: Vec<(u32, Vec<f64>)> = thread::scope(|scope| {
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let addrs = &addrs;
                let plan = &plan;
                scope.spawn(move || {
                    let mut plane = b.establish(addrs).expect("establish");
                    // Each process-like worker has a trivial local barrier;
                    // cross-server lockstep comes from the plane's
                    // end-of-superstep framing, exactly as in a real
                    // multi-process deployment.
                    let barrier = SuperstepBarrier::new(1);
                    let (metrics_tx, _metrics_rx) = channel();
                    let sid = plane.server_id();
                    let output = run_worker(
                        config,
                        plan,
                        partitioned,
                        program,
                        sid,
                        &mut plane,
                        &barrier,
                        &metrics_tx,
                    )
                    .expect("worker");
                    (sid, output.values)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    outputs.sort_by_key(|&(sid, _)| sid);
    outputs.into_iter().map(|(_, values)| values).collect()
}

fn assert_tcp_matches_sequential(
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    what: &str,
) {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let sequential =
        GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()))
            .run(partitioned, program)
            .expect("sequential run");
    let replicas = run_over_tcp(&config, partitioned, program);
    assert_eq!(replicas.len() as u32, SERVERS);
    for (sid, values) in replicas.iter().enumerate() {
        assert_eq!(
            values.len(),
            sequential.values.len(),
            "{what}: server {sid}"
        );
        for (v, (x, y)) in values.iter().zip(&sequential.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: server {sid} vertex {v} diverged over TCP ({x} vs {y})"
            );
        }
    }
}

#[test]
fn tcp_pagerank_is_bit_identical_to_sequential() {
    let g = RmatGenerator::new(8, 6).generate(2017);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("tcp", &g, 9)).unwrap();
    assert_tcp_matches_sequential(&p, &PageRank::new(8), "pagerank");
}

#[test]
fn tcp_sssp_is_bit_identical_to_sequential() {
    let g = RmatGenerator::new(8, 5).generate(42);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("tcp", &g, 9)).unwrap();
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    assert_tcp_matches_sequential(&p, &Sssp::new(source), "sssp");
}

#[test]
fn tcp_wcc_is_bit_identical_to_sequential() {
    let base = RmatGenerator::new(7, 4).simplified().generate(7);
    let mut b = GraphBuilder::new()
        .with_num_vertices(base.num_vertices())
        .symmetric(true);
    for e in base.edges().iter() {
        b.add_edge(e);
    }
    let sym = b.build().unwrap();
    let p = Spe::partition(&sym, &SpeConfig::with_tile_count("tcp", &sym, 9)).unwrap();
    assert_tcp_matches_sequential(&p, &Wcc::new(), "wcc");
}
