//! The chaos determinism suite: clusters under deterministic fault injection
//! must produce replicas bit-identical to the *unfaulted* sequential
//! reference.
//!
//! Every run here wraps real TCP endpoints (both backends: the blocking
//! [`SocketPlane`] fabric and the event-driven [`PollPlane`] loop,
//! established with the resilient `GHHR` protocol) in a
//! [`graphh_runtime::FaultPlane`] that severs live connections at exact
//! superstep boundaries. The transports must recover on their own — redial,
//! resume handshake, frame replay, collector dedup — and the suite demands
//! the strongest possible outcome: not "eventually consistent", but the
//! exact bits the run would have produced with no fault at all.
//!
//! The sweep tests cut at *every* superstep boundary of a run (for PageRank
//! and direction-optimizing BFS, on both backends): off-by-one bugs in
//! replay cursors live precisely at those boundaries, so covering all of
//! them leaves no place to hide. The storm test drives seeded multi-cut
//! schedules on every server at once ([`CutPlan::seeded`]), so a failure
//! reproduces from its seed.

use graphh_cluster::ClusterConfig;
use graphh_core::exec::ExecutionPlan;
use graphh_core::{
    DirectionOptimizingBfs, GabProgram, GraphHConfig, GraphHEngine, PageRank, SequentialExecutor,
};
use graphh_graph::generators::{GraphGenerator, RmatGenerator};
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use graphh_runtime::{
    run_worker, BroadcastPlane, CutPlan, FaultPlane, PollPlane, ResilienceConfig, SeverPeer,
    SocketPlane, SuperstepBarrier,
};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SERVERS: u32 = 3;
const ESTABLISH_TIMEOUT: Duration = Duration::from_secs(10);

/// Which resilient TCP backend a chaos run drives.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Socket,
    Poll,
}

/// Run one server to completion over a fault-injected resilient plane.
fn run_chaos_worker<P: BroadcastPlane + SeverPeer>(
    plane: P,
    cuts: CutPlan,
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
) -> (u32, Vec<f64>) {
    let cut_list = cuts.cuts().to_vec();
    let mut plane = FaultPlane::new(plane, cuts);
    let barrier = SuperstepBarrier::new(1);
    let (metrics_tx, _metrics_rx) = channel();
    let sid = plane.server_id();
    let output = run_worker(
        config,
        plan,
        partitioned,
        program,
        sid,
        &mut plane,
        &barrier,
        &metrics_tx,
    )
    .unwrap_or_else(|e| panic!("chaos worker {sid} (cuts {cut_list:?}): {e:?}"));
    (sid, output.values)
}

/// Establish a resilient cluster of `SERVERS` endpoints over loopback and run
/// the full worker loop on scoped threads, with server `sid` executing
/// `plans[sid]`'s connection cuts. Returns final replicas ordered by server.
fn run_resilient_cluster(
    kind: Kind,
    config: &GraphHConfig,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    plans: &[CutPlan],
) -> Vec<Vec<f64>> {
    assert_eq!(plans.len() as u32, SERVERS);
    let plan = ExecutionPlan::prepare(config, partitioned, program).expect("plan");

    let mut outputs: Vec<(u32, Vec<f64>)> = match kind {
        Kind::Socket => {
            let bound: Vec<_> = (0..SERVERS)
                .map(|sid| SocketPlane::bind(sid, SERVERS, "127.0.0.1:0").expect("bind"))
                .collect();
            let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
            thread::scope(|scope| {
                let handles: Vec<_> = bound
                    .into_iter()
                    .zip(plans)
                    .map(|(b, cuts)| {
                        let (addrs, plan, cuts) = (&addrs, &plan, cuts.clone());
                        scope.spawn(move || {
                            let endpoint = b
                                .establish_resilient(
                                    addrs,
                                    ESTABLISH_TIMEOUT,
                                    ResilienceConfig::default(),
                                )
                                .expect("establish resilient socket");
                            run_chaos_worker(endpoint, cuts, config, plan, partitioned, program)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
        Kind::Poll => {
            let bound: Vec<_> = (0..SERVERS)
                .map(|sid| PollPlane::bind(sid, SERVERS, "127.0.0.1:0").expect("bind"))
                .collect();
            let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
            thread::scope(|scope| {
                let handles: Vec<_> = bound
                    .into_iter()
                    .zip(plans)
                    .map(|(b, cuts)| {
                        let (addrs, plan, cuts) = (&addrs, &plan, cuts.clone());
                        scope.spawn(move || {
                            let endpoint = b
                                .establish_resilient(
                                    addrs,
                                    ESTABLISH_TIMEOUT,
                                    ResilienceConfig::default(),
                                )
                                .expect("establish resilient poll");
                            run_chaos_worker(endpoint, cuts, config, plan, partitioned, program)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
    };
    outputs.sort_by_key(|&(sid, _)| sid);
    outputs.into_iter().map(|(_, values)| values).collect()
}

/// The unfaulted ground truth: the sequential reference executor.
fn sequential_reference(partitioned: &PartitionedGraph, program: &dyn GabProgram) -> Vec<f64> {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    GraphHEngine::with_executor(config, Arc::new(SequentialExecutor::new()))
        .run(partitioned, program)
        .expect("sequential reference")
        .values
}

fn assert_chaos_matches_reference(
    kind: Kind,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    reference: &[f64],
    plans: &[CutPlan],
    what: &str,
) {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let replicas = run_resilient_cluster(kind, &config, partitioned, program, plans);
    for (sid, values) in replicas.iter().enumerate() {
        assert_eq!(values.len(), reference.len(), "{what}: server {sid}");
        for (v, (x, y)) in values.iter().zip(reference).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: server {sid} vertex {v} diverged under chaos ({x} vs {y})"
            );
        }
    }
}

fn pagerank_workload() -> PartitionedGraph {
    let g = RmatGenerator::new(6, 4).generate(2017);
    Spe::partition(&g, &SpeConfig::with_tile_count("chaos", &g, 6)).unwrap()
}

fn bfs_workload() -> (PartitionedGraph, DirectionOptimizingBfs) {
    let g = RmatGenerator::new(6, 4).generate(42);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("chaos", &g, 6)).unwrap();
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    // α=β=2 so the run genuinely switches push/pull on this small graph —
    // direction decisions must also survive mid-run cuts untouched.
    (p, DirectionOptimizingBfs::with_thresholds(source, 2, 2))
}

/// Cut at *every* superstep boundary, one run per boundary: server 0 severs
/// a rotating victim right after ending superstep `s`. Replay-cursor
/// off-by-ones live exactly at these boundaries.
fn sweep_every_boundary(
    kind: Kind,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    supersteps: u32,
    what: &str,
) {
    let reference = sequential_reference(partitioned, program);
    for s in 0..supersteps {
        let victim = 1 + (s % (SERVERS - 1));
        let mut plans = vec![CutPlan::none(); SERVERS as usize];
        plans[0] = CutPlan::explicit(vec![(s, victim)]);
        assert_chaos_matches_reference(
            kind,
            partitioned,
            program,
            &reference,
            &plans,
            &format!("{what}: cut peer {victim} after superstep {s}"),
        );
    }
}

const PAGERANK_SUPERSTEPS: u32 = 5;

#[test]
fn socket_pagerank_survives_a_cut_at_every_boundary() {
    sweep_every_boundary(
        Kind::Socket,
        &pagerank_workload(),
        &PageRank::new(PAGERANK_SUPERSTEPS),
        PAGERANK_SUPERSTEPS,
        "socket pagerank",
    );
}

#[test]
fn poll_pagerank_survives_a_cut_at_every_boundary() {
    sweep_every_boundary(
        Kind::Poll,
        &pagerank_workload(),
        &PageRank::new(PAGERANK_SUPERSTEPS),
        PAGERANK_SUPERSTEPS,
        "poll pagerank",
    );
}

#[test]
fn socket_bfs_survives_a_cut_at_every_boundary() {
    let (p, bfs) = bfs_workload();
    // BFS terminates when its frontier drains; cuts scheduled past the last
    // superstep are never reached, so sweeping a fixed bound covers every
    // boundary the run actually has.
    sweep_every_boundary(Kind::Socket, &p, &bfs, 4, "socket bfs");
}

#[test]
fn poll_bfs_survives_a_cut_at_every_boundary() {
    let (p, bfs) = bfs_workload();
    sweep_every_boundary(Kind::Poll, &p, &bfs, 4, "poll bfs");
}

/// Seed discovery instead of a static peer table, then the same storm: every
/// endpoint bootstraps its address book from one seed (`GHHM` exchanges over
/// the same listeners the run uses), establishes with the membership handle
/// installed — so every mid-storm redial re-consults the gossiped book — and
/// the final replicas must still match the unfaulted sequential reference,
/// bit for bit.
#[test]
fn seed_discovered_cluster_survives_the_storm_bit_identical() {
    let partitioned = pagerank_workload();
    let program = PageRank::new(PAGERANK_SUPERSTEPS);
    let reference = sequential_reference(&partitioned, &program);
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let plan = ExecutionPlan::prepare(&config, &partitioned, &program).expect("plan");
    let plans: Vec<CutPlan> = (0..SERVERS)
        .map(|sid| {
            let peers: Vec<u32> = (0..SERVERS).filter(|&p| p != sid).collect();
            CutPlan::seeded(0x5EED_6D65 + u64::from(sid), PAGERANK_SUPERSTEPS, &peers, 2)
        })
        .collect();
    for kind in [Kind::Socket, Kind::Poll] {
        let mut outputs: Vec<(u32, Vec<f64>)> = match kind {
            Kind::Socket => {
                let bound: Vec<_> = (0..SERVERS)
                    .map(|sid| SocketPlane::bind(sid, SERVERS, "127.0.0.1:0").expect("bind"))
                    .collect();
                let seed = bound[0].local_addr().unwrap();
                thread::scope(|scope| {
                    let handles: Vec<_> = bound
                        .into_iter()
                        .zip(&plans)
                        .map(|(b, cuts)| {
                            let (plan, cuts) = (&plan, cuts.clone());
                            let (config, partitioned, program) = (&config, &partitioned, &program);
                            scope.spawn(move || {
                                let view =
                                    b.discover(&[seed], ESTABLISH_TIMEOUT).expect("discover");
                                let endpoint = b
                                    .establish_resilient_discovered(
                                        view,
                                        ESTABLISH_TIMEOUT,
                                        ResilienceConfig::default(),
                                    )
                                    .expect("establish discovered socket");
                                run_chaos_worker(endpoint, cuts, config, plan, partitioned, program)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
            Kind::Poll => {
                let bound: Vec<_> = (0..SERVERS)
                    .map(|sid| PollPlane::bind(sid, SERVERS, "127.0.0.1:0").expect("bind"))
                    .collect();
                let seed = bound[0].local_addr().unwrap();
                thread::scope(|scope| {
                    let handles: Vec<_> = bound
                        .into_iter()
                        .zip(&plans)
                        .map(|(b, cuts)| {
                            let (plan, cuts) = (&plan, cuts.clone());
                            let (config, partitioned, program) = (&config, &partitioned, &program);
                            scope.spawn(move || {
                                let view =
                                    b.discover(&[seed], ESTABLISH_TIMEOUT).expect("discover");
                                let endpoint = b
                                    .establish_resilient_discovered(
                                        view,
                                        ESTABLISH_TIMEOUT,
                                        ResilienceConfig::default(),
                                    )
                                    .expect("establish discovered poll");
                                run_chaos_worker(endpoint, cuts, config, plan, partitioned, program)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
        };
        outputs.sort_by_key(|&(sid, _)| sid);
        for (sid, values) in &outputs {
            assert_eq!(values.len(), reference.len(), "seed {kind:?}: server {sid}");
            for (v, (x, y)) in values.iter().zip(&reference).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "seed-discovered {kind:?}: server {sid} vertex {v} diverged ({x} vs {y})"
                );
            }
        }
    }
}

/// The reconnect storm: every server runs a seeded multi-cut schedule at
/// once, so links drop and resume all over the cluster throughout the run —
/// and the result must still be the unfaulted reference, bit for bit. A
/// failure replays exactly from the seed.
#[test]
fn reconnect_storm_converges_to_the_unfaulted_reference() {
    let partitioned = pagerank_workload();
    let program = PageRank::new(PAGERANK_SUPERSTEPS);
    let reference = sequential_reference(&partitioned, &program);
    for kind in [Kind::Socket, Kind::Poll] {
        let plans: Vec<CutPlan> = (0..SERVERS)
            .map(|sid| {
                let peers: Vec<u32> = (0..SERVERS).filter(|&p| p != sid).collect();
                CutPlan::seeded(0x5EED_2017 + u64::from(sid), PAGERANK_SUPERSTEPS, &peers, 3)
            })
            .collect();
        assert_chaos_matches_reference(
            kind,
            &partitioned,
            &program,
            &reference,
            &plans,
            &format!("reconnect storm over {kind:?}"),
        );
    }
}
