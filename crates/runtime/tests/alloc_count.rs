//! Pins the zero-allocation claim of the broadcast hot path.
//!
//! A steady-state superstep's publish/exchange work — resolve the superstep's
//! push/pull direction from the frontier, choose an encoding, encode the
//! message, compress it, frame it for the wire, decode every received message
//! into the shared update buffer, merge — must perform **zero heap
//! allocations** once the reusable buffers (including the persistent
//! [`CompressorScratch`] holding the LZSS match-finder tables) are warm, on
//! the uncompressed path *and* on every compressed codec path. A counting
//! global allocator measures exactly that: warm the buffers with one full
//! superstep, snapshot the allocation counter, run many more supersteps, and
//! require the counter untouched — once per codec configuration.
//!
//! The counter is **thread-local**: the libtest harness thread allocates at
//! its own unpredictable times, and a process-global counter would charge
//! that noise to the hot path. This binary still holds a single `#[test]` so
//! nothing else runs concurrently with the measurement.

use graphh_cluster::{
    BroadcastMessage, ClusterConfig, CommunicationMode, MessageCodec, ServerMetrics,
};
use graphh_compress::{Codec, CompressorScratch};
use graphh_core::exec::{merge_updates_in_place, ExecutionPlan};
use graphh_core::{DirectionOptimizingBfs, GabProgram, GraphHConfig};
use graphh_graph::generators::{GraphGenerator, RmatGenerator};
use graphh_obs::{SpanRecorder, Tracer};
use graphh_partition::{Spe, SpeConfig};
use graphh_runtime::frame::encode_message_into;
use graphh_runtime::{BufferPool, Frame, MembershipHandle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's allocations and reallocations (frees are irrelevant).
struct CountingAllocator;

thread_local! {
    static LOCAL_ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// `try_with`: the allocator can be called during TLS teardown, when the
/// counter is already gone — those allocations are not ours to count.
fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

fn local_allocations() -> usize {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

/// One simulated superstep of codec/frame hot-path work over reused buffers:
/// resolve the direction from the frontier (the per-superstep decision every
/// direction-aware executor now makes), encode + compress + frame every
/// message, stream-decode every message back into the shared update buffer,
/// merge. Returns the number of updates merged (so the work cannot be
/// optimized away).
///
/// Phase spans are recorded into `rec` exactly where the real worker loop
/// records them — with a disabled recorder every call must be a free no-op,
/// which is the observability layer's zero-cost-when-off contract and part of
/// what the allocation counter below pins.
#[allow(clippy::too_many_arguments)]
fn superstep(
    codec: &MessageCodec,
    messages: &[BroadcastMessage],
    plan: &ExecutionPlan,
    program: &dyn GabProgram,
    frontier: &[u32],
    sid: u32,
    superstep: u32,
    enc_scratch: &mut Vec<u8>,
    wire: &mut Vec<u8>,
    frame_buf: &mut Vec<u8>,
    dec_scratch: &mut Vec<u8>,
    comp: &mut CompressorScratch,
    all_updates: &mut Vec<(u32, f64)>,
    rec: &mut SpanRecorder,
) -> usize {
    // The direction decision — frontier stats + Beamer heuristic — runs on
    // borrowed slices only; it is part of the zero-allocation loop.
    let view = plan.frontier_view(program, frontier);
    let mut metrics = ServerMetrics::default();
    all_updates.clear();
    frame_buf.clear();
    let compute = rec.begin();
    rec.end_superstep_dir(
        compute,
        "tile-compute",
        "superstep",
        superstep,
        view.direction.as_str(),
    );
    let publish = rec.begin();
    for message in messages {
        // Sender side: encode (encoding choice + codec, with persistent
        // compressor state) and frame for TCP.
        codec.encode_into_with(message, &mut metrics, enc_scratch, wire, comp);
        encode_message_into(sid, superstep, wire, frame_buf).expect("payload under frame cap");
        // Receiver side: streaming validated decode into the shared buffer.
        codec
            .decode_each(wire, &mut metrics, dec_scratch, |v, val| {
                all_updates.push((v, val));
            })
            .expect("own wire bytes decode");
    }
    rec.end_superstep(publish, "encode-publish", "superstep", superstep);
    let flush = rec.begin();
    Frame::EndOfSuperstep {
        sender: sid,
        superstep,
    }
    .encode(frame_buf);
    rec.end_superstep(flush, "plane-flush", "superstep", superstep);
    let apply = rec.begin();
    merge_updates_in_place(all_updates);
    rec.end_superstep(apply, "apply", "superstep", superstep);
    all_updates.len()
}

#[test]
fn steady_state_codec_and_frame_path_allocates_nothing_for_every_codec() {
    // Hybrid mode with both outcomes represented: a dense-encoded message
    // (90% updated) and a sparse one (a handful of updates in a wide range).
    let dense = BroadcastMessage::new(
        0,
        2048,
        (0..1843).map(|v| (v, f64::from(v) * 0.25)).collect(),
    );
    let sparse = BroadcastMessage::new(
        2048,
        4096,
        [2050u32, 2100, 3000, 4000]
            .iter()
            .map(|&v| (v, 1.0))
            .collect(),
    );
    let messages = [dense, sparse];

    // A real plan + push-capable program so the measured loop runs the same
    // frontier-stats / direction-resolution code the worker loop runs. Built
    // before any snapshot: only the per-superstep decision is measured.
    let graph = RmatGenerator::new(7, 4).generate(2017);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("alloc", &graph, 4)).expect("partition");
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
    let program = DirectionOptimizingBfs::new(0);
    let plan = ExecutionPlan::prepare(&config, &partitioned, &program).expect("plan");
    let frontier: Vec<u32> = (0..64).collect();

    // One zero-allocation measurement per codec configuration: the
    // uncompressed path and every compressed codec, each with its own warm
    // buffers and persistent compressor scratch.
    let compressors: [Option<Codec>; 6] = [
        None,
        Some(Codec::Raw),
        Some(Codec::Snappy),
        Some(Codec::Zlib1),
        Some(Codec::Zlib3),
        Some(Codec::VarintDelta),
    ];
    // A live membership handle, as every seed-discovered resilient fabric
    // holds one: its per-iteration steady-state work — the gossip-cadence
    // version check and the redial address lookup — rides the same hot loop
    // and must stay allocation-free while the book is quiescent (the
    // fault-free case). Built before any snapshot: counter registration and
    // the book itself allocate once, at setup.
    let membership = MembershipHandle::new(3, 4, "127.0.0.1:4750".parse().unwrap());
    let mut last_book_version = membership.version();

    let pool = BufferPool::new();
    for compressor in compressors {
        let label = compressor.map_or("uncompressed", Codec::name);
        let codec = MessageCodec::new(CommunicationMode::default(), compressor);

        // The reusable buffers, checked out of the pool exactly as the worker
        // holds them (per encode lane) for the whole run.
        let mut enc_scratch = pool.checkout();
        let mut wire = pool.checkout();
        let mut frame_buf = pool.checkout();
        let mut dec_scratch = pool.checkout();
        let mut comp = CompressorScratch::new();
        let mut all_updates: Vec<(u32, f64)> = Vec::new();
        // Tracing disabled — as in every untraced run — must add zero
        // allocations (and zero clock reads) to the measured loop.
        let tracer = Tracer::off();
        let mut rec = tracer.thread(1);

        // Warm-up superstep: buffers (and the compressor's match-finder
        // tables) grow to their steady-state capacities.
        let expected = superstep(
            &codec,
            &messages,
            &plan,
            &program,
            &frontier,
            3,
            0,
            &mut enc_scratch,
            &mut wire,
            &mut frame_buf,
            &mut dec_scratch,
            &mut comp,
            &mut all_updates,
            &mut rec,
        );
        assert_eq!(expected, 1843 + 4, "codec {label}");

        let before = local_allocations();
        for s in 1..64u32 {
            // The resilient event loop's membership tick: one version load
            // and compare (gossip only fires when the book moved), plus the
            // book consultation a redial would perform. Neither may allocate.
            let version = membership.version();
            if version > last_book_version {
                last_book_version = version;
            }
            std::hint::black_box(membership.peer_addr(s % 4));
            let merged = superstep(
                &codec,
                &messages,
                &plan,
                &program,
                &frontier,
                3,
                s,
                &mut enc_scratch,
                &mut wire,
                &mut frame_buf,
                &mut dec_scratch,
                &mut comp,
                &mut all_updates,
                &mut rec,
            );
            assert_eq!(merged, expected, "codec {label}");
        }
        let after = local_allocations();
        assert_eq!(
            after - before,
            0,
            "steady-state codec/frame path must not allocate (codec {label}, \
             tracing off): {} allocations over 63 supersteps",
            after - before
        );
    }
}
