//! Observability must never feed back into computation: a traced run is
//! bit-identical to an untraced one, on both executors — and the trace it
//! leaves behind actually contains the superstep phase spans on the
//! documented lanes (`docs/OBSERVABILITY.md`).

use graphh_cluster::ClusterConfig;
use graphh_core::{GraphHConfig, GraphHEngine, PageRank, SequentialExecutor, Sssp};
use graphh_graph::generators::{path_graph, GraphGenerator, RmatGenerator};
use graphh_obs::{SpanEvent, TraceConfig, Tracer};
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use graphh_runtime::ThreadedExecutor;
use std::sync::Arc;

const SERVERS: u32 = 3;

fn bit_identical(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn partitioned() -> PartitionedGraph {
    let g = RmatGenerator::new(8, 6).generate(11);
    Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 9)).unwrap()
}

fn config() -> GraphHConfig {
    GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
}

/// Names of every span with category `"superstep"` in `spans`.
fn superstep_phases(spans: &[SpanEvent]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = spans
        .iter()
        .filter(|s| s.cat == "superstep")
        .map(|s| s.name)
        .collect();
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn traced_threaded_run_is_bit_identical_and_emits_phase_spans() {
    let p = partitioned();
    let program = PageRank::new(8);

    let plain = GraphHEngine::with_executor(config(), Arc::new(ThreadedExecutor::new()))
        .run(&p, &program)
        .unwrap();

    let tracer = Tracer::new();
    let traced = GraphHEngine::with_executor(
        config(),
        Arc::new(ThreadedExecutor::with_trace(TraceConfig {
            tracer: tracer.clone(),
        })),
    )
    .run(&p, &program)
    .unwrap();

    assert!(
        bit_identical(&plain.values, &traced.values),
        "tracing must not change results"
    );
    assert_eq!(plain.supersteps_run, traced.supersteps_run);

    let spans = tracer.drain();
    assert_eq!(
        superstep_phases(&spans),
        vec![
            "apply",
            "barrier-wait",
            "collect-decode",
            "encode-publish",
            "plane-flush",
            "tile-compute",
        ],
        "every worker phase must appear in the trace"
    );
    // Lane scheme: 0 = driver, 1 + sid = server workers; every server
    // contributed spans, and each ran all the supersteps.
    assert!(spans.iter().any(|s| s.tid == 0 && s.cat == "load"));
    for sid in 0..SERVERS {
        let lane = 1 + sid;
        let computes: Vec<_> = spans
            .iter()
            .filter(|s| s.tid == lane && s.name == "tile-compute")
            .collect();
        assert_eq!(computes.len() as u32, traced.supersteps_run, "lane {lane}");
        assert!(computes
            .iter()
            .all(|s| s.superstep.is_some() && s.dur_us < 60_000_000));
    }
    // Pool-job spans from each server's compute pool land on that server's
    // pool lanes (100 * (1 + sid) + worker_index).
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "pool" && (100..100 * (SERVERS + 2)).contains(&s.tid)),
        "pool jobs must be traced on the pool lanes"
    );
}

#[test]
fn traced_sequential_run_is_bit_identical_and_emits_phase_spans() {
    let g = path_graph(120);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 8)).unwrap();
    let program = Sssp::new(0);

    let plain = GraphHEngine::with_executor(config(), Arc::new(SequentialExecutor::new()))
        .run(&p, &program)
        .unwrap();

    let tracer = Tracer::new();
    let traced = GraphHEngine::with_executor(
        config(),
        Arc::new(SequentialExecutor::with_trace(TraceConfig {
            tracer: tracer.clone(),
        })),
    )
    .run(&p, &program)
    .unwrap();

    assert!(bit_identical(&plain.values, &traced.values));
    assert_eq!(
        plain.updated_ratio_per_superstep,
        traced.updated_ratio_per_superstep
    );

    let spans = tracer.drain();
    assert_eq!(
        superstep_phases(&spans),
        vec!["apply", "encode-publish", "tile-compute"],
        "the sequential executor's phase set (no plane, no barrier)"
    );
    // Everything the sequential driver records lands on lane 0.
    assert!(spans.iter().filter(|s| s.cat != "pool").all(|s| s.tid == 0));
    assert!(spans.iter().any(|s| s.name == "server-build"));
}
