//! The [`PollPlane`] threading contract, asserted rather than assumed:
//! however many peers an endpoint talks to, it adds **exactly one**
//! event-loop thread to the process, and dropping it joins that thread again
//! (no lingering reader threads — the clean-shutdown half of the contract).
//!
//! This lives in its own test binary, as a **single** `#[test]`, on purpose:
//! OS thread counts are process-wide, so the assertions must not race other
//! tests in the same process — neither this crate's parallel unit tests nor
//! a sibling `#[test]` running on another libtest thread.

use graphh_runtime::poll::os_thread_count;
use graphh_runtime::{BoundTcpPlane, BroadcastPlane, TcpPlaneKind};
use std::net::SocketAddr;
use std::thread;

fn establish_cluster(kind: TcpPlaneKind, n: u32) -> Vec<Box<dyn BroadcastPlane>> {
    let bound: Vec<BoundTcpPlane> = (0..n)
        .map(|sid| BoundTcpPlane::bind(kind, sid, n, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let addrs = &addrs;
                scope.spawn(move || b.establish(addrs).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// One test, three claims: (a) a poll endpoint costs exactly one event-loop
/// thread however many peers it has — versus the socket plane's thread per
/// peer; (b) the planes work in that state; (c) dropping them joins every
/// transport thread.
#[test]
fn poll_plane_threading_contract() {
    let Some(baseline) = os_thread_count() else {
        eprintln!("skipping: no /proc/self/status thread count on this platform");
        return;
    };

    // The contrast that motivates the poll plane, on a 3-server cluster:
    // one reader thread per directed peer pair for the blocking backend...
    let n = 3u32;
    let socket_planes = establish_cluster(TcpPlaneKind::Socket, n);
    assert_eq!(
        os_thread_count().unwrap() - baseline,
        (n * (n - 1)) as usize,
        "socket plane: one reader thread per directed peer pair"
    );
    drop(socket_planes);
    assert_eq!(
        os_thread_count().unwrap(),
        baseline,
        "dropping the socket planes must join every reader thread"
    );

    // ...versus exactly one event-loop thread per endpoint for the
    // event-driven one, on a larger cluster for good measure.
    let servers = 4u32;
    let mut planes = establish_cluster(TcpPlaneKind::Poll, servers);
    // Establishment's scoped threads are joined by now; what remains is one
    // event-loop thread per endpoint — NOT one per peer connection (which
    // would be servers * (servers - 1)).
    assert_eq!(
        os_thread_count().unwrap(),
        baseline + servers as usize,
        "{servers} poll endpoints must add exactly {servers} event-loop threads"
    );

    // The planes actually work in this state: one full superstep exchange.
    thread::scope(|scope| {
        for plane in &mut planes {
            scope.spawn(move || {
                let sid = plane.server_id();
                plane.broadcast(0, &[sid as u8]).unwrap();
                plane.end_superstep(0).unwrap();
                assert_eq!(plane.collect(0).unwrap().len(), servers as usize - 1);
            });
        }
    });
    // The exchange ran on worker threads that are joined again; the loop
    // thread count is unchanged.
    assert_eq!(os_thread_count().unwrap(), baseline + servers as usize);

    drop(planes);
    assert_eq!(
        os_thread_count().unwrap(),
        baseline,
        "dropping every plane must join every event-loop thread"
    );
}
