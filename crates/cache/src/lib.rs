//! # graphh-cache
//!
//! GraphH's edge cache system (paper §IV-B).
//!
//! Each server keeps its assigned tiles on local disk; whatever memory is left after
//! vertex states and message buffers is used to cache tiles so later supersteps skip
//! the disk read. The cache can hold tiles raw or compressed — the paper's four
//! "cache modes" are raw, snappy, zlib-1 and zlib-3 — and it picks the lightest
//! codec whose estimated compression ratio lets the whole tile set fit
//! (`minimise i subject to S / γᵢ ≤ C`, falling back to zlib-1 when none fits).
//!
//! Raw mode stores the *decoded* tile behind an `Arc`, so a hit is a refcount bump —
//! no memcpy, no re-parse. Compressed modes store the compressed blob as an
//! `Arc<[u8]>` and decompress outside the cache lock on each hit. Recency can be
//! stamped explicitly by the caller ([`EdgeCache::lookup`] / [`EdgeCache::admit`]),
//! which is how the engine keeps LRU state deterministic when `threads_per_server`
//! workers probe the cache concurrently.
//!
//! The cache records hits, misses, evictions and the decompression time it incurs so
//! the engine can charge them to the superstep's cost.

use graphh_compress::Codec;
use graphh_graph::ids::TileId;
use graphh_partition::Tile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// How the cache chooses its codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheMode {
    /// Always use this codec (cache modes 1–4 of the paper when given
    /// `Raw`/`Snappy`/`Zlib1`/`Zlib3`).
    Fixed(Codec),
    /// Choose automatically from the total tile size and the cache capacity.
    Auto,
}

/// Configuration of one server's edge cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCacheConfig {
    /// Memory the cache may use, in bytes (the server's idle memory).
    pub capacity_bytes: u64,
    /// Codec selection policy.
    pub mode: CacheMode,
}

impl EdgeCacheConfig {
    /// A cache with automatic codec selection.
    pub fn auto(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            mode: CacheMode::Auto,
        }
    }

    /// A cache pinned to one of the paper's cache modes (1–4).
    pub fn fixed_mode(capacity_bytes: u64, paper_mode: u8) -> Option<Self> {
        Codec::from_cache_mode(paper_mode).map(|codec| Self {
            capacity_bytes,
            mode: CacheMode::Fixed(codec),
        })
    }
}

/// Counters the cache exposes for the experiment harness (Fig. 7b) and cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups that found the tile in memory.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Tiles evicted to stay under capacity.
    pub evictions: u64,
    /// Tiles currently resident.
    pub resident_tiles: u64,
    /// Bytes currently used by cached (possibly compressed) tiles.
    pub used_bytes: u64,
    /// Seconds spent decompressing cached tiles (to be charged to the superstep).
    pub decompress_seconds: f64,
    /// Seconds spent compressing tiles on insert.
    pub compress_seconds: f64,
}

impl CacheStats {
    /// Hit ratio (1.0 when never consulted).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Choose the cache codec the way GraphH does at program start (§IV-B): the lightest
/// codec whose *estimated* ratio γ fits the total tile bytes into the capacity;
/// zlib-1 if even zlib-3 would not fit.
pub fn select_codec(total_tile_bytes: u64, capacity_bytes: u64) -> Codec {
    for codec in [Codec::Raw, Codec::Snappy, Codec::Zlib1, Codec::Zlib3] {
        if (total_tile_bytes as f64 / codec.estimated_ratio()) <= capacity_bytes as f64 {
            return codec;
        }
    }
    Codec::Zlib1
}

/// How a tile is held in memory.
#[derive(Debug)]
enum Stored {
    /// Raw mode: the *decoded* tile. A hit is an `Arc` refcount bump — no
    /// memcpy, no re-parse.
    Raw(Arc<Tile>),
    /// Compressed modes: the compressed blob, reference-counted so hits can
    /// decompress outside the cache lock without cloning the bytes.
    Compressed(Arc<[u8]>),
}

#[derive(Debug)]
struct Entry {
    data: Stored,
    /// Bytes charged against the capacity: the serialized tile size for raw
    /// mode (what the old byte-blob cache charged), the compressed size
    /// otherwise.
    charged_bytes: u64,
    /// Recency stamp for LRU eviction.
    last_used: u64,
}

/// A cache hit: the decoded tile plus the decompression time this particular
/// hit cost (0 for raw mode). Returning the per-hit time lets callers
/// accumulate codec time in a deterministic order of their own choosing
/// (the engine reduces per-tile metrics in tile order), instead of relying on
/// the cache's internal, lock-order-dependent accumulation.
#[derive(Debug)]
pub struct TileFetch {
    /// The decoded tile.
    pub tile: Arc<Tile>,
    /// Seconds of decompression charged for this hit.
    pub decompress_seconds: f64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TileId, Entry>,
    used_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    decompress_seconds: f64,
    compress_seconds: f64,
}

/// A capacity-bounded, LRU, optionally compressing tile cache.
#[derive(Debug)]
pub struct EdgeCache {
    capacity: u64,
    codec: Codec,
    inner: Mutex<Inner>,
}

impl EdgeCache {
    /// Build a cache for a tile set whose serialized size totals `total_tile_bytes`.
    /// With [`CacheMode::Auto`] the codec is selected from that size and the capacity.
    pub fn new(config: EdgeCacheConfig, total_tile_bytes: u64) -> Self {
        let codec = match config.mode {
            CacheMode::Fixed(c) => c,
            CacheMode::Auto => select_codec(total_tile_bytes, config.capacity_bytes),
        };
        Self {
            capacity: config.capacity_bytes,
            codec,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The codec the cache ended up using.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current value of the recency clock. Callers that stamp their own
    /// lookups (see [`EdgeCache::lookup`]) derive deterministic stamps from
    /// this base.
    pub fn clock(&self) -> u64 {
        self.inner.lock().clock
    }

    /// Look up a tile with an explicit recency stamp.
    ///
    /// The stamp replaces the internal access-order clock so concurrent
    /// callers can assign recency deterministically (the engine stamps each
    /// tile by its position in the server's tile order, making LRU state
    /// independent of thread scheduling). The internal clock ratchets to the
    /// largest stamp seen.
    pub fn lookup(&self, tile_id: TileId, stamp: u64) -> Option<TileFetch> {
        let mut inner = self.inner.lock();
        inner.clock = inner.clock.max(stamp);
        match inner.entries.get_mut(&tile_id) {
            Some(entry) => {
                entry.last_used = entry.last_used.max(stamp);
                let data = match &entry.data {
                    Stored::Raw(tile) => Stored::Raw(Arc::clone(tile)),
                    Stored::Compressed(blob) => Stored::Compressed(Arc::clone(blob)),
                };
                inner.hits += 1;
                match data {
                    Stored::Raw(tile) => Some(TileFetch {
                        tile,
                        decompress_seconds: 0.0,
                    }),
                    Stored::Compressed(blob) => {
                        let decompress_seconds =
                            blob.len() as f64 / self.codec.decompress_throughput();
                        inner.decompress_seconds += decompress_seconds;
                        // Decompress + parse outside the lock.
                        drop(inner);
                        let bytes = self
                            .codec
                            .decompress(&blob)
                            .expect("cache blob was produced by this codec");
                        let tile = Arc::new(
                            Tile::from_bytes(&bytes).expect("cache blob is a serialized tile"),
                        );
                        Some(TileFetch {
                            tile,
                            decompress_seconds,
                        })
                    }
                }
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Admit a tile after a miss, with an explicit recency stamp (see
    /// [`EdgeCache::lookup`]). Oldest tiles are evicted until the new entry
    /// fits; if the tile alone exceeds the capacity it is not cached.
    ///
    /// `serialized` is the tile's on-disk form (sizes the entry and feeds the
    /// compressor); `decoded` is the already-parsed tile the caller obtained
    /// from those bytes — raw mode stores it directly so later hits skip the
    /// parse. Returns the compression time charged (0 for raw mode), so the
    /// caller can fold it into its own metrics deterministically.
    pub fn admit(
        &self,
        tile_id: TileId,
        serialized: &[u8],
        decoded: &Arc<Tile>,
        stamp: u64,
    ) -> f64 {
        let (data, charged_bytes, compress_seconds) = match self.codec {
            Codec::Raw => (
                Stored::Raw(Arc::clone(decoded)),
                serialized.len() as u64,
                0.0,
            ),
            codec => {
                let blob = codec.compress(serialized);
                // Compression throughput is of the same order as decompression
                // for the codecs we model; reuse the decompression figure.
                let seconds = serialized.len() as f64 / codec.decompress_throughput();
                let charged = blob.len() as u64;
                (
                    Stored::Compressed(Arc::from(blob.into_boxed_slice())),
                    charged,
                    seconds,
                )
            }
        };
        let mut inner = self.inner.lock();
        inner.clock = inner.clock.max(stamp);
        inner.compress_seconds += compress_seconds;
        if charged_bytes > self.capacity {
            return compress_seconds;
        }
        if let Some(old) = inner.entries.remove(&tile_id) {
            inner.used_bytes -= old.charged_bytes;
        }
        while inner.used_bytes + charged_bytes > self.capacity {
            let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let evicted = inner.entries.remove(&victim).expect("victim exists");
            inner.used_bytes -= evicted.charged_bytes;
            inner.evictions += 1;
        }
        inner.used_bytes += charged_bytes;
        inner.entries.insert(
            tile_id,
            Entry {
                data,
                charged_bytes,
                last_used: stamp,
            },
        );
        compress_seconds
    }

    /// Reserve a unique access-order stamp: the clock is incremented under
    /// the lock, so concurrent callers can never mint the same stamp (a
    /// duplicate would make LRU ties break by hash-map iteration order).
    fn reserve_stamp(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        inner.clock
    }

    /// Look up a tile using the internal access-order clock. Returns the
    /// decoded tile on a hit, `None` on a miss.
    pub fn get(&self, tile_id: TileId) -> Option<Arc<Tile>> {
        let stamp = self.reserve_stamp();
        self.lookup(tile_id, stamp).map(|fetch| fetch.tile)
    }

    /// Insert a tile (serialized form) after a miss, using the internal
    /// access-order clock. Bytes that do not parse as a tile are not cached.
    pub fn insert(&self, tile_id: TileId, serialized_tile: &[u8]) {
        let Ok(tile) = Tile::from_bytes(serialized_tile) else {
            return;
        };
        let stamp = self.reserve_stamp();
        self.admit(tile_id, serialized_tile, &Arc::new(tile), stamp);
    }

    /// Whether a tile is currently resident (does not affect recency or stats).
    pub fn contains(&self, tile_id: TileId) -> bool {
        self.inner.lock().entries.contains_key(&tile_id)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_tiles: inner.entries.len() as u64,
            used_bytes: inner.used_bytes,
            decompress_seconds: inner.decompress_seconds,
            compress_seconds: inner.compress_seconds,
        }
    }

    /// Reset hit/miss/time counters (keeps the cached tiles).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        inner.decompress_seconds = 0.0;
        inner.compress_seconds = 0.0;
    }

    /// Drop every cached tile.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(id: TileId, edges_per_target: usize) -> Tile {
        let adjacency: Vec<Vec<(u32, f32)>> = (0..10)
            .map(|t| {
                (0..edges_per_target)
                    .map(|s| ((t * 100 + s) as u32, 1.0))
                    .collect()
            })
            .collect();
        Tile::from_adjacency(id, id * 10, &adjacency, false)
    }

    #[test]
    fn auto_mode_selection_follows_paper_rule() {
        // Fits raw → raw.
        assert_eq!(select_codec(100, 1000), Codec::Raw);
        // Fits only after 2x compression → snappy.
        assert_eq!(select_codec(1800, 1000), Codec::Snappy);
        // Needs 4x → zlib-1.
        assert_eq!(select_codec(3900, 1000), Codec::Zlib1);
        // Needs 5x → zlib-3.
        assert_eq!(select_codec(4900, 1000), Codec::Zlib3);
        // Does not fit at all → zlib-1 (paper's fallback).
        assert_eq!(select_codec(100_000, 1000), Codec::Zlib1);
    }

    #[test]
    fn hit_returns_identical_tile() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 1 << 10);
        let t = tile(3, 5);
        assert!(cache.get(3).is_none());
        cache.insert(3, &t.to_bytes());
        let got = cache.get(3).expect("tile should be cached");
        assert_eq!(*got, t);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_tiles, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compressed_modes_roundtrip_and_record_time() {
        for mode in 2u8..=4 {
            let cfg = EdgeCacheConfig::fixed_mode(1 << 20, mode).unwrap();
            let cache = EdgeCache::new(cfg, 0);
            let t = tile(1, 50);
            cache.insert(1, &t.to_bytes());
            assert_eq!(*cache.get(1).unwrap(), t);
            let stats = cache.stats();
            assert!(stats.decompress_seconds > 0.0, "mode {mode}");
            assert!(stats.compress_seconds > 0.0, "mode {mode}");
            assert!(
                stats.used_bytes < t.serialized_size(),
                "mode {mode} should compress"
            );
        }
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let t0 = tile(0, 20);
        let blob = t0.to_bytes();
        // Capacity for roughly two raw tiles.
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: blob.len() as u64 * 2 + 10,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(0, &tile(0, 20).to_bytes());
        cache.insert(1, &tile(1, 20).to_bytes());
        // Touch tile 0 so tile 1 is the LRU victim.
        assert!(cache.get(0).is_some());
        cache.insert(2, &tile(2, 20).to_bytes());
        assert!(cache.contains(0));
        assert!(!cache.contains(1), "LRU tile should have been evicted");
        assert!(cache.contains(2));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.used_bytes <= cache.capacity());
    }

    #[test]
    fn oversized_tile_is_not_cached() {
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: 16,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(7, &tile(7, 50).to_bytes());
        assert!(!cache.contains(7));
        assert_eq!(cache.stats().resident_tiles, 0);
    }

    #[test]
    fn reinserting_same_tile_does_not_leak_bytes() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 0);
        let t = tile(5, 10);
        cache.insert(5, &t.to_bytes());
        let used_once = cache.stats().used_bytes;
        cache.insert(5, &t.to_bytes());
        assert_eq!(cache.stats().used_bytes, used_once);
        assert_eq!(cache.stats().resident_tiles, 1);
    }

    #[test]
    fn clear_and_reset() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 0);
        cache.insert(1, &tile(1, 5).to_bytes());
        let _ = cache.get(1);
        let _ = cache.get(2);
        cache.reset_stats();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.resident_tiles, 1);
        cache.clear();
        assert_eq!(cache.stats().resident_tiles, 0);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn raw_mode_hits_share_one_decoded_tile() {
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: 1 << 20,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        let t = tile(4, 8);
        cache.insert(4, &t.to_bytes());
        let a = cache.get(4).unwrap();
        let b = cache.get(4).unwrap();
        // A raw hit is a refcount bump on the same decoded tile, not a copy.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().decompress_seconds, 0.0);
    }

    #[test]
    fn explicit_stamps_drive_lru_deterministically() {
        let t0 = tile(0, 20);
        let blob = t0.to_bytes();
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: blob.len() as u64 * 2 + 10,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        // Admit tiles 0 and 1, then bump tile 0's recency via a stamped
        // lookup; tile 1 must be the victim when tile 2 arrives, regardless
        // of the order the operations' locks were acquired in.
        cache.admit(0, &tile(0, 20).to_bytes(), &Arc::new(tile(0, 20)), 1);
        cache.admit(1, &tile(1, 20).to_bytes(), &Arc::new(tile(1, 20)), 2);
        assert!(cache.lookup(0, 3).is_some());
        cache.admit(2, &tile(2, 20).to_bytes(), &Arc::new(tile(2, 20)), 4);
        assert!(cache.contains(0));
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        // Stale stamps never roll recency backwards.
        assert!(cache.lookup(0, 1).is_some());
        assert_eq!(cache.clock(), 4);
    }

    #[test]
    fn unparseable_bytes_are_not_cached() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 0);
        cache.insert(9, b"definitely not a tile");
        assert!(!cache.contains(9));
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: 0,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(0, &tile(0, 5).to_bytes());
        assert!(cache.get(0).is_none());
        assert_eq!(cache.stats().hit_ratio(), 0.0);
    }
}
