//! # graphh-cache
//!
//! GraphH's edge cache system (paper §IV-B).
//!
//! Each server keeps its assigned tiles on local disk; whatever memory is left after
//! vertex states and message buffers is used to cache tiles so later supersteps skip
//! the disk read. The cache can hold tiles raw or compressed — the paper's four
//! "cache modes" are raw, snappy, zlib-1 and zlib-3 — and it picks the lightest
//! codec whose estimated compression ratio lets the whole tile set fit
//! (`minimise i subject to S / γᵢ ≤ C`, falling back to zlib-1 when none fits).
//!
//! The cache records hits, misses, evictions and the decompression time it incurs so
//! the engine can charge them to the superstep's cost.

use graphh_compress::Codec;
use graphh_graph::ids::TileId;
use graphh_partition::Tile;
use parking_lot::Mutex;
use std::collections::HashMap;

/// How the cache chooses its codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheMode {
    /// Always use this codec (cache modes 1–4 of the paper when given
    /// `Raw`/`Snappy`/`Zlib1`/`Zlib3`).
    Fixed(Codec),
    /// Choose automatically from the total tile size and the cache capacity.
    Auto,
}

/// Configuration of one server's edge cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCacheConfig {
    /// Memory the cache may use, in bytes (the server's idle memory).
    pub capacity_bytes: u64,
    /// Codec selection policy.
    pub mode: CacheMode,
}

impl EdgeCacheConfig {
    /// A cache with automatic codec selection.
    pub fn auto(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            mode: CacheMode::Auto,
        }
    }

    /// A cache pinned to one of the paper's cache modes (1–4).
    pub fn fixed_mode(capacity_bytes: u64, paper_mode: u8) -> Option<Self> {
        Codec::from_cache_mode(paper_mode).map(|codec| Self {
            capacity_bytes,
            mode: CacheMode::Fixed(codec),
        })
    }
}

/// Counters the cache exposes for the experiment harness (Fig. 7b) and cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups that found the tile in memory.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Tiles evicted to stay under capacity.
    pub evictions: u64,
    /// Tiles currently resident.
    pub resident_tiles: u64,
    /// Bytes currently used by cached (possibly compressed) tiles.
    pub used_bytes: u64,
    /// Seconds spent decompressing cached tiles (to be charged to the superstep).
    pub decompress_seconds: f64,
    /// Seconds spent compressing tiles on insert.
    pub compress_seconds: f64,
}

impl CacheStats {
    /// Hit ratio (1.0 when never consulted).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Choose the cache codec the way GraphH does at program start (§IV-B): the lightest
/// codec whose *estimated* ratio γ fits the total tile bytes into the capacity;
/// zlib-1 if even zlib-3 would not fit.
pub fn select_codec(total_tile_bytes: u64, capacity_bytes: u64) -> Codec {
    for codec in [Codec::Raw, Codec::Snappy, Codec::Zlib1, Codec::Zlib3] {
        if (total_tile_bytes as f64 / codec.estimated_ratio()) <= capacity_bytes as f64 {
            return codec;
        }
    }
    Codec::Zlib1
}

#[derive(Debug)]
struct Entry {
    blob: Vec<u8>,
    /// Recency stamp for LRU eviction.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TileId, Entry>,
    used_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    decompress_seconds: f64,
    compress_seconds: f64,
}

/// A capacity-bounded, LRU, optionally compressing tile cache.
#[derive(Debug)]
pub struct EdgeCache {
    capacity: u64,
    codec: Codec,
    inner: Mutex<Inner>,
}

impl EdgeCache {
    /// Build a cache for a tile set whose serialized size totals `total_tile_bytes`.
    /// With [`CacheMode::Auto`] the codec is selected from that size and the capacity.
    pub fn new(config: EdgeCacheConfig, total_tile_bytes: u64) -> Self {
        let codec = match config.mode {
            CacheMode::Fixed(c) => c,
            CacheMode::Auto => select_codec(total_tile_bytes, config.capacity_bytes),
        };
        Self {
            capacity: config.capacity_bytes,
            codec,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The codec the cache ended up using.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Look up a tile. Returns the decoded tile on a hit, `None` on a miss.
    pub fn get(&self, tile_id: TileId) -> Option<Tile> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let codec = self.codec;
        match inner.entries.get_mut(&tile_id) {
            Some(entry) => {
                entry.last_used = clock;
                let blob = entry.blob.clone();
                inner.hits += 1;
                if codec != Codec::Raw {
                    inner.decompress_seconds += blob.len() as f64 / codec.decompress_throughput();
                }
                drop(inner);
                let bytes = codec
                    .decompress(&blob)
                    .expect("cache blob was produced by this codec");
                Some(Tile::from_bytes(&bytes).expect("cache blob is a serialized tile"))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a tile (serialized form) after a miss. Oldest tiles are evicted until
    /// the new entry fits; if the tile alone exceeds the capacity it is not cached.
    pub fn insert(&self, tile_id: TileId, serialized_tile: &[u8]) {
        let blob = self.codec.compress(serialized_tile);
        let mut inner = self.inner.lock();
        if self.codec != Codec::Raw {
            // Compression throughput is of the same order as decompression for the
            // codecs we model; reuse the decompression figure.
            inner.compress_seconds +=
                serialized_tile.len() as f64 / self.codec.decompress_throughput();
        }
        let size = blob.len() as u64;
        if size > self.capacity {
            return;
        }
        if let Some(old) = inner.entries.remove(&tile_id) {
            inner.used_bytes -= old.blob.len() as u64;
        }
        while inner.used_bytes + size > self.capacity {
            let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let evicted = inner.entries.remove(&victim).expect("victim exists");
            inner.used_bytes -= evicted.blob.len() as u64;
            inner.evictions += 1;
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.used_bytes += size;
        inner.entries.insert(
            tile_id,
            Entry {
                blob,
                last_used: clock,
            },
        );
    }

    /// Whether a tile is currently resident (does not affect recency or stats).
    pub fn contains(&self, tile_id: TileId) -> bool {
        self.inner.lock().entries.contains_key(&tile_id)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_tiles: inner.entries.len() as u64,
            used_bytes: inner.used_bytes,
            decompress_seconds: inner.decompress_seconds,
            compress_seconds: inner.compress_seconds,
        }
    }

    /// Reset hit/miss/time counters (keeps the cached tiles).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        inner.decompress_seconds = 0.0;
        inner.compress_seconds = 0.0;
    }

    /// Drop every cached tile.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(id: TileId, edges_per_target: usize) -> Tile {
        let adjacency: Vec<Vec<(u32, f32)>> = (0..10)
            .map(|t| {
                (0..edges_per_target)
                    .map(|s| ((t * 100 + s) as u32, 1.0))
                    .collect()
            })
            .collect();
        Tile::from_adjacency(id, id * 10, &adjacency, false)
    }

    #[test]
    fn auto_mode_selection_follows_paper_rule() {
        // Fits raw → raw.
        assert_eq!(select_codec(100, 1000), Codec::Raw);
        // Fits only after 2x compression → snappy.
        assert_eq!(select_codec(1800, 1000), Codec::Snappy);
        // Needs 4x → zlib-1.
        assert_eq!(select_codec(3900, 1000), Codec::Zlib1);
        // Needs 5x → zlib-3.
        assert_eq!(select_codec(4900, 1000), Codec::Zlib3);
        // Does not fit at all → zlib-1 (paper's fallback).
        assert_eq!(select_codec(100_000, 1000), Codec::Zlib1);
    }

    #[test]
    fn hit_returns_identical_tile() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 1 << 10);
        let t = tile(3, 5);
        assert!(cache.get(3).is_none());
        cache.insert(3, &t.to_bytes());
        let got = cache.get(3).expect("tile should be cached");
        assert_eq!(got, t);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_tiles, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compressed_modes_roundtrip_and_record_time() {
        for mode in 2u8..=4 {
            let cfg = EdgeCacheConfig::fixed_mode(1 << 20, mode).unwrap();
            let cache = EdgeCache::new(cfg, 0);
            let t = tile(1, 50);
            cache.insert(1, &t.to_bytes());
            assert_eq!(cache.get(1).unwrap(), t);
            let stats = cache.stats();
            assert!(stats.decompress_seconds > 0.0, "mode {mode}");
            assert!(stats.compress_seconds > 0.0, "mode {mode}");
            assert!(
                stats.used_bytes < t.serialized_size(),
                "mode {mode} should compress"
            );
        }
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let t0 = tile(0, 20);
        let blob = t0.to_bytes();
        // Capacity for roughly two raw tiles.
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: blob.len() as u64 * 2 + 10,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(0, &tile(0, 20).to_bytes());
        cache.insert(1, &tile(1, 20).to_bytes());
        // Touch tile 0 so tile 1 is the LRU victim.
        assert!(cache.get(0).is_some());
        cache.insert(2, &tile(2, 20).to_bytes());
        assert!(cache.contains(0));
        assert!(!cache.contains(1), "LRU tile should have been evicted");
        assert!(cache.contains(2));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.used_bytes <= cache.capacity());
    }

    #[test]
    fn oversized_tile_is_not_cached() {
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: 16,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(7, &tile(7, 50).to_bytes());
        assert!(!cache.contains(7));
        assert_eq!(cache.stats().resident_tiles, 0);
    }

    #[test]
    fn reinserting_same_tile_does_not_leak_bytes() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 0);
        let t = tile(5, 10);
        cache.insert(5, &t.to_bytes());
        let used_once = cache.stats().used_bytes;
        cache.insert(5, &t.to_bytes());
        assert_eq!(cache.stats().used_bytes, used_once);
        assert_eq!(cache.stats().resident_tiles, 1);
    }

    #[test]
    fn clear_and_reset() {
        let cache = EdgeCache::new(EdgeCacheConfig::auto(1 << 20), 0);
        cache.insert(1, &tile(1, 5).to_bytes());
        let _ = cache.get(1);
        let _ = cache.get(2);
        cache.reset_stats();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.resident_tiles, 1);
        cache.clear();
        assert_eq!(cache.stats().resident_tiles, 0);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: 0,
                mode: CacheMode::Fixed(Codec::Raw),
            },
            0,
        );
        cache.insert(0, &tile(0, 5).to_bytes());
        assert!(cache.get(0).is_none());
        assert_eq!(cache.stats().hit_ratio(), 0.0);
    }
}
