//! # graphh-pool
//!
//! A small, self-owned work-chunking thread pool: ordered fork-join over index
//! ranges on plain `std::thread`s.
//!
//! GraphH (SunWDX17) runs `T` compute threads *inside* every server for
//! tile-level parallel gather. The workspace's vendored `rayon` stand-in is
//! sequential, so this crate supplies the real data-parallel substrate the
//! engine's tile phase needs — without pulling in any external dependency.
//!
//! Two substrates share the same chunking/ordering machinery:
//!
//! * [`WorkerPool`] — a **persistent** pool: worker threads are spawned once
//!   (per server, in the engine) and reused for every fork-join, so short
//!   supersteps pay a condvar wake instead of a thread spawn per phase. This
//!   is what the engine and the SPE use.
//! * [`fork_join_ordered`] — the original spawn-per-call scoped fork-join,
//!   kept as the baseline the `report runtime` microbenchmark compares the
//!   persistent pool against (and for one-shot callers that cannot keep a
//!   pool alive).
//!
//! ## Determinism
//!
//! Both substrates map a function over `0..num_items` and return the results
//! **in index order**:
//!
//! * work is *chunked* dynamically: workers claim contiguous index chunks from
//!   a shared atomic cursor, so an unlucky thread stuck on one expensive item
//!   does not serialize the rest (tiles have very uneven edge counts),
//! * every item's result is tagged with its index and the tagged results are
//!   sorted after the join, so the output order — and therefore any reduction
//!   the caller performs over it — is independent of thread count and
//!   scheduling. This is what lets the engine keep `threads_per_server`-way
//!   parallel tile phases bit-identical to the sequential reference,
//! * a panic on any worker is re-raised on the calling thread after every
//!   worker has finished the phase, matching what a plain sequential loop
//!   would do,
//! * one thread (or fewer than two items) runs inline on the calling thread
//!   with no cross-thread traffic at all, so the sequential path has zero
//!   overhead.

use graphh_obs::Tracer;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Chunk of indices a worker claims per cursor fetch: small enough to balance
/// uneven per-item work, large enough to amortise the atomic traffic.
fn chunk_size(num_items: usize, workers: usize) -> usize {
    (num_items / (workers * 4)).max(1)
}

/// Upper bound on workers per fork-join: the host's available parallelism
/// (floored at 2 so the concurrent path still runs — and stays tested — on
/// single-core hosts). Spawning more threads than cores cannot speed a
/// CPU-bound tile phase up; it only multiplies spawn/join overhead when a
/// large `threads_per_server` meets a small machine.
fn worker_cap() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .max(2)
}

/// Lock that shrugs off poisoning: pool state is only mutated outside user
/// code, but a panicking `f` must not wedge every later phase.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The claim loop both substrates run: grab contiguous chunks off the shared
/// cursor, run `f` on each index, tag results with their index.
fn claim_chunks<T, F>(
    cursor: &AtomicUsize,
    chunk: usize,
    num_items: usize,
    f: &F,
) -> Vec<(usize, T)>
where
    F: Fn(usize) -> T,
{
    let mut local = Vec::new();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= num_items {
            return local;
        }
        let end = (start + chunk).min(num_items);
        for i in start..end {
            local.push((i, f(i)));
        }
    }
}

/// Sort tagged results back into index order and strip the tags.
fn untag<T>(mut tagged: Vec<(usize, T)>) -> Vec<T> {
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

/// A phase job as seen by the resident workers: a borrowed closure whose
/// lifetime has been erased. Soundness rests on [`WorkerPool::fork_join_ordered`]
/// not returning until every worker has finished running it.
type Job = &'static (dyn Fn() + Sync);

struct PoolState {
    /// Monotonic phase counter; a bump signals workers to run `job` once.
    epoch: u64,
    /// The current phase's job, present while `active > 0`.
    job: Option<Job>,
    /// Span name the current phase's job spans are recorded under.
    job_name: &'static str,
    /// Resident workers still running the current job.
    active: usize,
    /// Set on drop; workers exit their loop.
    shutdown: bool,
    /// Span destination for per-phase job spans ([`Tracer::off`] by default:
    /// workers then run jobs with zero observability overhead).
    tracer: Tracer,
    /// First span lane for this pool's workers (worker `i` records on lane
    /// `tid_base + i`); set together with the tracer so several pools can
    /// occupy disjoint lanes in one trace.
    tid_base: u32,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between phases.
    work: Condvar,
    /// The caller parks here until `active` drains to zero.
    done: Condvar,
    /// Serializes whole phases: the pool is `Sync`, and two concurrent
    /// `fork_join_ordered` calls must not interleave their borrowed jobs
    /// (soundness of the lifetime erasure depends on one phase at a time).
    phase: Mutex<()>,
}

/// A persistent fork-join pool: `threads - 1` resident worker threads plus the
/// calling thread cooperate on each [`WorkerPool::fork_join_ordered`] phase.
///
/// Created once (the engine builds one per simulated server, sized to the
/// paper's `T`), reused for every tile phase of every superstep and for SPE
/// partitioning — no thread is ever spawned inside the superstep loop. Between
/// phases the workers park on a condvar; an idle pool costs nothing but
/// memory.
///
/// The resident worker count is capped at the host's available parallelism,
/// exactly like the spawning [`fork_join_ordered`].
///
/// ```
/// use graphh_pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// // Results come back in item order no matter which worker ran what.
/// let squares = pool.fork_join_ordered(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// drop(pool); // resident workers are joined here
/// ```
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker threads cooperating per phase, including the caller.
    threads: usize,
}

impl WorkerPool {
    /// A pool running phases on up to `threads` cooperating threads (the
    /// calling thread plus `min(threads, available_parallelism) - 1` resident
    /// workers). `threads <= 1` builds an inline pool with no resident
    /// workers: every phase runs sequentially on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, worker_cap());
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                job_name: "pool-job",
                active: 0,
                shutdown: false,
                tracer: Tracer::off(),
                tid_base: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            phase: Mutex::new(()),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("graphh-pool-{i}"))
                    .spawn(move || Self::worker_loop(&shared, i as u32))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// A pool sized to the host's available parallelism — what callers
    /// without a configured thread count (e.g. SPE pre-processing outside any
    /// simulated server) should use.
    pub fn with_host_parallelism() -> Self {
        Self::new(worker_cap())
    }

    /// Threads cooperating on each phase (resident workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Record one `pool-job` span per resident worker per phase into
    /// `tracer`, on lanes `tid_base + 1 ..`. Pass [`Tracer::off`] to stop
    /// recording; that is also the state every pool starts in.
    pub fn set_tracer(&self, tracer: Tracer, tid_base: u32) {
        let mut state = lock(&self.shared.state);
        state.tracer = tracer;
        state.tid_base = tid_base;
    }

    fn worker_loop(shared: &PoolShared, worker_index: u32) {
        let mut seen_epoch = 0u64;
        loop {
            let (job, job_name, tracer, tid_base) = {
                let mut state = lock(&shared.state);
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen_epoch {
                        seen_epoch = state.epoch;
                        break (
                            state.job.expect("job set whenever the epoch bumps"),
                            state.job_name,
                            state.tracer.clone(),
                            state.tid_base,
                        );
                    }
                    state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            };
            if tracer.is_enabled() {
                let mut rec = tracer.thread(tid_base + worker_index);
                let start = rec.begin();
                job();
                rec.end(start, job_name, "pool");
            } else {
                job();
            }
            let mut state = lock(&shared.state);
            state.active -= 1;
            if state.active == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// Map `f` over `0..num_items` on the pool's threads and return the
    /// results in index order. `f` runs exactly once per index; the result is
    /// independent of the thread count by construction. A panic inside `f` is
    /// re-raised on the caller after the phase has fully drained (the pool
    /// stays usable afterwards).
    pub fn fork_join_ordered<T, F>(&self, num_items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fork_join_ordered_named(num_items, "pool-job", f)
    }

    /// [`WorkerPool::fork_join_ordered`] with an explicit span name: when a
    /// tracer is attached (see [`WorkerPool::set_tracer`]) each resident
    /// worker records one span per phase under `name` instead of the generic
    /// `pool-job`, so distinct phase kinds sharing one pool (tile compute vs.
    /// encode-compress) stay distinguishable in the trace and the phase
    /// breakdown.
    pub fn fork_join_ordered_named<T, F>(
        &self,
        num_items: usize,
        name: &'static str,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.handles.is_empty() || num_items <= 1 {
            return (0..num_items).map(f).collect();
        }
        let _phase = lock(&self.shared.phase);
        let chunk = chunk_size(num_items, self.threads);
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(num_items));
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let run = || {
            // Every participant catches its own panic: a worker must never
            // unwind through `worker_loop` (it would stop decrementing
            // `active`), and the caller must not unwind before the phase has
            // drained (workers would still hold the borrowed closure).
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                claim_chunks(&cursor, chunk, num_items, &f)
            }));
            match outcome {
                Ok(local) => lock(&results).extend(local),
                Err(payload) => {
                    let mut slot = lock(&panic_slot);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    // Mark the cursor exhausted so peers stop claiming doomed
                    // work promptly; the phase aborts either way.
                    cursor.store(num_items, Ordering::Relaxed);
                }
            }
        };
        let job: &(dyn Fn() + Sync) = &run;
        // SAFETY: the job borrows `run`/`f`/locals on this stack frame. The
        // wait loop below does not return until `active == 0`, i.e. every
        // resident worker has finished executing the job, so the erased
        // lifetime never outlives the borrow.
        let job: Job =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(job) };

        {
            let mut state = lock(&self.shared.state);
            state.job = Some(job);
            state.job_name = name;
            state.epoch += 1;
            state.active = self.handles.len();
            self.shared.work.notify_all();
        }
        // The caller is a full participant, not just a coordinator.
        run();
        {
            let mut state = lock(&self.shared.state);
            while state.active > 0 {
                state = self
                    .shared
                    .done
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            state.job = None;
        }

        if let Some(payload) = lock(&panic_slot).take() {
            std::panic::resume_unwind(payload);
        }
        let tagged = std::mem::take(&mut *lock(&results));
        debug_assert_eq!(tagged.len(), num_items, "every index runs exactly once");
        untag(tagged)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("resident_workers", &self.handles.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Spawn-per-call fork-join (baseline)
// ---------------------------------------------------------------------------

/// Map `f` over `0..num_items` using up to `threads` freshly spawned scoped
/// worker threads and return the results in index order.
///
/// This is the spawn-per-call baseline: `min(threads, num_items,
/// available_parallelism)` scoped threads live for the duration of the call.
/// [`WorkerPool`] provides the same contract without the recurring spawn cost;
/// the `report runtime` microbenchmark measures the difference. `f` runs
/// exactly once per index; with `threads <= 1` or fewer than two items the
/// calling thread does all the work inline. A panic inside `f` is propagated
/// to the caller after every worker has been joined.
pub fn fork_join_ordered<T, F>(threads: usize, num_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || num_items <= 1 {
        return (0..num_items).map(f).collect();
    }
    let workers = threads.min(num_items).min(worker_cap());
    let chunk = chunk_size(num_items, workers);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;

    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(num_items);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(move || claim_chunks(cursor, chunk, num_items, f)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Re-raise the worker's panic on the caller; remaining workers
                // are joined by the scope before this propagates.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for part in parts {
        tagged.extend(part);
    }
    untag(tagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            for n in [0usize, 1, 2, 7, 100, 1000] {
                let out = fork_join_ordered(threads, n, |i| i * i);
                assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = fork_join_ordered(8, 500, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn uneven_work_is_balanced_not_lost() {
        // Item 0 is ~1000x more expensive; dynamic chunking must still finish
        // every item and keep the order.
        let out = fork_join_ordered(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            i + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        // A non-Sync side effect per call would not compile for the spawned
        // path; instead assert the calling thread does the work.
        let caller = std::thread::current().id();
        let out = fork_join_ordered(1, 10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    #[should_panic(expected = "item 3 exploded")]
    fn worker_panic_propagates_to_caller() {
        let _ = fork_join_ordered(4, 16, |i| {
            if i == 3 {
                panic!("item 3 exploded");
            }
            i
        });
    }

    #[test]
    fn chunk_size_is_sane() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(3, 4), 1);
        assert_eq!(chunk_size(1000, 4), 62);
    }

    // -- persistent pool ----------------------------------------------------

    #[test]
    fn pool_results_come_back_in_index_order() {
        for threads in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            for n in [0usize, 1, 2, 7, 100, 1000] {
                let out = pool.fork_join_ordered(n, |i| i * i);
                assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pool_is_reused_across_many_phases_without_respawning() {
        let pool = WorkerPool::new(4);
        let calls = AtomicU64::new(0);
        for phase in 0..200 {
            let out = pool.fork_join_ordered(17, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                phase * 17 + i
            });
            assert_eq!(out, (0..17).map(|i| phase * 17 + i).collect::<Vec<_>>());
        }
        assert_eq!(calls.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn pool_matches_spawning_fork_join_bit_for_bit() {
        let pool = WorkerPool::new(3);
        let f = |i: usize| (i as f64).sqrt() * 1.5 + i as f64;
        let a = pool.fork_join_ordered(333, f);
        let b = fork_join_ordered(3, 333, f);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn pool_with_one_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let out = pool.fork_join_ordered(10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn pool_uneven_work_is_balanced_not_lost() {
        let pool = WorkerPool::new(4);
        let out = pool.fork_join_ordered(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            i + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.fork_join_ordered(64, |i| {
                if i == 33 {
                    panic!("item 33 exploded");
                }
                i
            })
        }));
        let payload = boom.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("item 33 exploded"), "{message}");
        // The pool keeps working after a panicked phase.
        let out = pool.fork_join_ordered(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_drop_joins_workers_cleanly() {
        for _ in 0..20 {
            let pool = WorkerPool::new(4);
            let _ = pool.fork_join_ordered(8, |i| i);
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn pool_job_spans_land_on_worker_lanes() {
        let pool = WorkerPool::new(3);
        if pool.threads() < 2 {
            return; // single-core host: no resident workers, no job spans
        }
        let tracer = Tracer::new();
        pool.set_tracer(tracer.clone(), 100);
        let _ = pool.fork_join_ordered(64, |i| i);
        let _ = pool.fork_join_ordered(64, |i| i);
        // Recorders flush at the end of each phase, before the join releases
        // the caller, so the spans are visible as soon as fork-join returns.
        let spans = tracer.drain();
        assert!(!spans.is_empty(), "resident workers must record job spans");
        assert!(spans
            .iter()
            .all(|s| s.name == "pool-job" && s.cat == "pool"));
        assert!(spans.iter().all(|s| s.tid > 100 && s.tid < 100 + 3));
    }

    #[test]
    fn named_phases_record_spans_under_their_own_name() {
        let pool = WorkerPool::new(3);
        if pool.threads() < 2 {
            return; // single-core host: no resident workers, no job spans
        }
        let tracer = Tracer::new();
        pool.set_tracer(tracer.clone(), 200);
        let _ = pool.fork_join_ordered_named(64, "encode-compress", |i| i);
        let _ = pool.fork_join_ordered(64, |i| i);
        let spans = tracer.drain();
        assert!(spans.iter().any(|s| s.name == "encode-compress"));
        assert!(spans.iter().any(|s| s.name == "pool-job"));
        assert!(spans.iter().all(|s| s.cat == "pool"));
    }

    #[test]
    fn zero_threads_clamps_to_inline_pool() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.fork_join_ordered(5, |i| i), vec![0, 1, 2, 3, 4]);
    }
}
