//! # graphh-pool
//!
//! A small, self-owned work-chunking thread pool: scoped fork-join over index
//! ranges on plain `std::thread`s.
//!
//! GraphH (SunWDX17) runs `T` compute threads *inside* every server for
//! tile-level parallel gather. The workspace's vendored `rayon` stand-in is
//! sequential, so this crate supplies the real data-parallel substrate the
//! engine's tile phase needs — without pulling in any external dependency.
//!
//! ## Design
//!
//! [`fork_join_ordered`] maps a function over `0..num_items` on up to
//! `threads` scoped worker threads and returns the results **in index order**:
//!
//! * work is *chunked* dynamically: workers claim contiguous index chunks from
//!   a shared atomic cursor, so an unlucky thread stuck on one expensive item
//!   does not serialize the rest (tiles have very uneven edge counts),
//! * every item's result is tagged with its index and the tagged results are
//!   sorted after the join, so the output order — and therefore any reduction
//!   the caller performs over it — is independent of thread count and
//!   scheduling. This is what lets the engine keep `threads_per_server`-way
//!   parallel tile phases bit-identical to the sequential reference,
//! * a panic on any worker is re-raised on the calling thread after all
//!   workers have been joined (no thread outlives the scope), matching what a
//!   plain sequential loop would do,
//! * `threads <= 1` (or fewer than two items) runs inline on the calling
//!   thread with no spawn at all, so the sequential path has zero overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Chunk of indices a worker claims per cursor fetch: small enough to balance
/// uneven per-item work, large enough to amortise the atomic traffic.
fn chunk_size(num_items: usize, workers: usize) -> usize {
    (num_items / (workers * 4)).max(1)
}

/// Upper bound on workers per fork-join: the host's available parallelism
/// (floored at 2 so the concurrent path still runs — and stays tested — on
/// single-core hosts). Spawning more threads than cores cannot speed a
/// CPU-bound tile phase up; it only multiplies spawn/join overhead when a
/// large `threads_per_server` meets a small machine.
fn worker_cap() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .max(2)
}

/// Map `f` over `0..num_items` using up to `threads` worker threads and return
/// the results in index order.
///
/// `f` runs exactly once per index. With `threads <= 1` or fewer than two
/// items the calling thread does all the work inline; otherwise up to
/// `min(threads, num_items, available_parallelism)` scoped threads are
/// spawned for the duration of the call (spawn-per-call keeps the pool free
/// of `'static` job erasure; a persistent pool is future work — see
/// ROADMAP). The result is independent of the worker count by construction.
/// A panic inside `f` is propagated to the caller after every worker has
/// been joined.
pub fn fork_join_ordered<T, F>(threads: usize, num_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || num_items <= 1 {
        return (0..num_items).map(f).collect();
    }
    let workers = threads.min(num_items).min(worker_cap());
    let chunk = chunk_size(num_items, workers);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;

    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(num_items);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= num_items {
                            break;
                        }
                        let end = (start + chunk).min(num_items);
                        for i in start..end {
                            local.push((i, f(i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Re-raise the worker's panic on the caller; remaining workers
                // are joined by the scope before this propagates.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for part in parts {
        tagged.extend(part);
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            for n in [0usize, 1, 2, 7, 100, 1000] {
                let out = fork_join_ordered(threads, n, |i| i * i);
                assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = fork_join_ordered(8, 500, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn uneven_work_is_balanced_not_lost() {
        // Item 0 is ~1000x more expensive; dynamic chunking must still finish
        // every item and keep the order.
        let out = fork_join_ordered(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            i + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        // A non-Sync side effect per call would not compile for the spawned
        // path; instead assert the calling thread does the work.
        let caller = std::thread::current().id();
        let out = fork_join_ordered(1, 10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    #[should_panic(expected = "item 3 exploded")]
    fn worker_panic_propagates_to_caller() {
        let _ = fork_join_ordered(4, 16, |i| {
            if i == 3 {
                panic!("item 3 exploded");
            }
            i
        });
    }

    #[test]
    fn chunk_size_is_sane() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(3, 4), 1);
        assert_eq!(chunk_size(1000, 4), 62);
    }
}
