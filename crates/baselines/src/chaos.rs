//! Chaos: edge-centric streaming GAS over storage spread across the cluster
//! (paper §II-B.3, §II-C.3, Algorithm 3).
//!
//! Chaos splits the graph into streaming partitions kept on disk; every superstep it
//! scans all edges (scatter), writes one message per edge to disk, scans all messages
//! (gather), and rewrites all vertex states (apply). Because a partition's data is
//! spread uniformly and randomly over *all* servers, every one of those disk accesses
//! also crosses the network, which is why the paper's Table III charges Chaos
//! `3|E| + 3|V|` records of network traffic and `2|E| + 2|V|` of disk reads plus
//! `|E| + |V|` of disk writes per superstep.

use crate::costsheet::{CostSheet, SystemKind};
use crate::program::MessageProgram;
use crate::BaselineRunResult;
use graphh_cluster::{ClusterConfig, ClusterMetrics, CostModel, SuperstepReport};
use graphh_graph::Graph;

/// Configuration of a Chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Number of streaming partitions (the paper's P); defaults to 4 per server.
    pub partitions_per_server: u32,
    /// Cap on supersteps.
    pub max_supersteps: Option<u32>,
}

impl ChaosConfig {
    /// Default Chaos configuration on the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            partitions_per_server: 4,
            max_supersteps: None,
        }
    }
}

/// Bytes of one edge record in a streaming partition.
const EDGE_RECORD_BYTES: u64 = 8;
/// Bytes of one message record.
const MESSAGE_RECORD_BYTES: u64 = 12;
/// Bytes of one vertex-state record.
const VERTEX_RECORD_BYTES: u64 = 16;

/// The Chaos engine.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    config: ChaosConfig,
}

impl ChaosEngine {
    /// An engine with the given configuration.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// Run `program` on `graph`.
    ///
    /// Chaos has no notion of inactive vertices at the storage level: every superstep
    /// streams every edge, which is exactly why it loses to GraphH on frontier
    /// algorithms.
    pub fn run(&self, graph: &Graph, program: &dyn MessageProgram) -> BaselineRunResult {
        let n = graph.num_vertices() as usize;
        let num_servers = self.config.cluster.num_servers;
        let csr = graph.to_csr();
        let out_degrees = graph.out_degrees();
        let combiner = program.combiner();

        let mut values: Vec<f64> = (0..n as u32)
            .map(|v| program.initial_value(v, n as u64, out_degrees[v as usize]))
            .collect();
        let cost_model = CostModel::new(self.config.cluster);
        let mut metrics = ClusterMetrics::default();
        let max_supersteps = self
            .config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());
        let mut supersteps_run = 0;
        let per_server_memory = CostSheet::new(&graph.stats(), self.config.cluster)
            .per_server_memory_bytes(SystemKind::Chaos);

        let e = graph.num_edges();
        let v = graph.num_vertices();

        for superstep in 0..max_supersteps {
            let mut report = SuperstepReport::new(superstep, num_servers);

            // Scatter: stream every edge, produce a message per edge that carries one.
            let mut combined = vec![combiner.identity(); n];
            let mut got_message = vec![false; n];
            let mut messages_written = 0u64;
            for src in 0..n as u32 {
                let d = out_degrees[src as usize];
                for (dst, w) in csr.neighbors_weighted(src) {
                    if let Some(msg) = program.message(values[src as usize], d, w) {
                        combined[dst as usize] = combiner.combine(combined[dst as usize], msg);
                        got_message[dst as usize] = true;
                        messages_written += 1;
                    }
                }
            }

            // Apply: rewrite every vertex state.
            let mut updated = 0u64;
            for i in 0..n {
                let new = program.apply(values[i], got_message[i].then_some(combined[i]), n as u64);
                if program.is_update(values[i], new) {
                    updated += 1;
                }
                values[i] = new;
            }

            // Charge the storage traffic of Algorithm 3, spread evenly over the
            // cluster (Chaos distributes every partition over all servers).
            let per_server = |total: u64| total / u64::from(num_servers);
            let disk_read = 2 * v * VERTEX_RECORD_BYTES
                + e * EDGE_RECORD_BYTES
                + messages_written * MESSAGE_RECORD_BYTES;
            let disk_write = messages_written * MESSAGE_RECORD_BYTES + v * VERTEX_RECORD_BYTES;
            let network = disk_read + disk_write; // every access is remote
            for server in report.servers.iter_mut() {
                server.edges_processed = per_server(e + messages_written);
                server.disk_read_bytes = per_server(disk_read);
                server.disk_write_bytes = per_server(disk_write);
                server.disk_read_ops = u64::from(self.config.partitions_per_server) * 3;
                server.disk_write_ops = u64::from(self.config.partitions_per_server) * 2;
                server.network_sent_bytes = per_server(network);
                server.network_received_bytes = per_server(network);
                server.network_messages = u64::from(self.config.partitions_per_server) * 4;
                server.messages_produced = per_server(messages_written);
                server.vertices_updated = updated;
                server.peak_memory_bytes = per_server_memory;
            }
            report.total_vertices_updated = updated;

            let report = cost_model.finalize(report);
            metrics.push(report);
            supersteps_run = superstep + 1;
            if updated == 0 {
                break;
            }
        }

        BaselineRunResult {
            values,
            metrics,
            supersteps_run,
            per_server_memory_bytes: per_server_memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pregel::{PregelConfig, PregelEngine};
    use crate::program::{PageRankMsg, SsspMsg};
    use graphh_core::reference;
    use graphh_graph::generators::{grid_graph, GraphGenerator, RmatGenerator};

    fn cluster(n: u32) -> ClusterConfig {
        ClusterConfig::paper_testbed(n)
    }

    #[test]
    fn chaos_pagerank_matches_reference() {
        let g = RmatGenerator::new(8, 5).generate(21);
        let result = ChaosEngine::new(ChaosConfig::new(cluster(3))).run(&g, &PageRankMsg::new(6));
        assert!(reference::max_abs_diff(&result.values, &reference::pagerank(&g, 6)) < 1e-9);
    }

    #[test]
    fn chaos_sssp_matches_reference() {
        let g = grid_graph(5, 5);
        let result = ChaosEngine::new(ChaosConfig::new(cluster(2))).run(&g, &SsspMsg::new(0));
        assert_eq!(
            reference::max_abs_diff(&result.values, &reference::sssp(&g, 0)),
            0.0
        );
    }

    #[test]
    fn chaos_streams_all_edges_every_superstep() {
        let g = grid_graph(8, 8);
        let result = ChaosEngine::new(ChaosConfig::new(cluster(2))).run(&g, &SsspMsg::new(0));
        // Unlike Pregel+ (which only touches the frontier), every superstep's disk
        // traffic covers the whole edge set.
        for report in &result.metrics.supersteps {
            assert!(report.total_disk_read_bytes() >= g.num_edges() * EDGE_RECORD_BYTES);
            assert!(report.total_network_bytes() > 0);
        }
    }

    #[test]
    fn chaos_is_slower_than_pregel_plus_on_the_same_job() {
        // Figure 1b / 9: in-memory Pregel+ beats the out-of-core engines by a wide
        // margin because it performs no disk I/O.
        let g = RmatGenerator::new(9, 8).generate(3);
        let pregel =
            PregelEngine::new(PregelConfig::pregel_plus(cluster(3))).run(&g, &PageRankMsg::new(3));
        let chaos = ChaosEngine::new(ChaosConfig::new(cluster(3))).run(&g, &PageRankMsg::new(3));
        assert!(
            chaos.avg_superstep_seconds() > 2.0 * pregel.avg_superstep_seconds(),
            "chaos {} vs pregel {}",
            chaos.avg_superstep_seconds(),
            pregel.avg_superstep_seconds()
        );
        // But Chaos needs far less memory.
        assert!(chaos.per_server_memory_bytes < pregel.per_server_memory_bytes);
        assert!(reference::max_abs_diff(&pregel.values, &chaos.values) < 1e-9);
    }
}
