//! The message-passing program abstraction shared by the Pregel, GAS and Chaos
//! baselines, and the paper's algorithms expressed in it.
//!
//! All four evaluated algorithms fit the classic "signal along out-edges, combine
//! with an associative operator, apply" pattern, which is what makes sender-side
//! message combining (Pregel+/GraphD) and distributed gather (PowerGraph) possible
//! in the first place.

use graphh_graph::ids::VertexId;

/// How messages to the same target are folded together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageCombiner {
    /// Sum of messages (PageRank).
    Sum,
    /// Minimum of messages (SSSP, BFS, WCC label propagation).
    Min,
}

impl MessageCombiner {
    /// Identity element of the combiner.
    pub fn identity(self) -> f64 {
        match self {
            MessageCombiner::Sum => 0.0,
            MessageCombiner::Min => f64::INFINITY,
        }
    }

    /// Fold two values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            MessageCombiner::Sum => a + b,
            MessageCombiner::Min => a.min(b),
        }
    }
}

/// A vertex program in the message-passing (Pregel / GAS scatter) form.
pub trait MessageProgram: Send + Sync {
    /// Program name for logs.
    fn name(&self) -> &'static str;

    /// Initial value of a vertex.
    fn initial_value(&self, v: VertexId, num_vertices: u64, out_degree: u32) -> f64;

    /// The message `src` sends along an out-edge of weight `weight`, or `None` to
    /// send nothing (e.g. unreachable SSSP vertices).
    fn message(&self, src_value: f64, out_degree: u32, weight: f32) -> Option<f64>;

    /// How messages to the same vertex combine.
    fn combiner(&self) -> MessageCombiner;

    /// New value of a vertex from the combined message and its current value.
    /// `received` is `None` when the vertex got no message this superstep.
    fn apply(&self, current: f64, received: Option<f64>, num_vertices: u64) -> f64;

    /// Whether the change from `old` to `new` re-activates the vertex's neighbours.
    fn is_update(&self, old: f64, new: f64) -> bool {
        old != new
    }

    /// Whether every vertex is active in superstep 0.
    fn all_active_initially(&self) -> bool {
        true
    }

    /// Hard cap on supersteps.
    fn max_supersteps(&self) -> u32 {
        u32::MAX
    }
}

/// PageRank in message-passing form.
#[derive(Debug, Clone)]
pub struct PageRankMsg {
    /// Damping factor.
    pub damping: f64,
    /// Number of supersteps to run.
    pub supersteps: u32,
}

impl PageRankMsg {
    /// Standard configuration (damping 0.85).
    pub fn new(supersteps: u32) -> Self {
        Self {
            damping: 0.85,
            supersteps,
        }
    }
}

impl MessageProgram for PageRankMsg {
    fn name(&self) -> &'static str {
        "pagerank"
    }
    fn initial_value(&self, _v: VertexId, num_vertices: u64, _d: u32) -> f64 {
        1.0 / num_vertices as f64
    }
    fn message(&self, src_value: f64, out_degree: u32, _w: f32) -> Option<f64> {
        (out_degree > 0).then(|| src_value / f64::from(out_degree))
    }
    fn combiner(&self) -> MessageCombiner {
        MessageCombiner::Sum
    }
    fn apply(&self, _current: f64, received: Option<f64>, num_vertices: u64) -> f64 {
        (1.0 - self.damping) / num_vertices as f64 + self.damping * received.unwrap_or(0.0)
    }
    fn is_update(&self, old: f64, new: f64) -> bool {
        old != new
    }
    fn max_supersteps(&self) -> u32 {
        self.supersteps
    }
}

/// SSSP in message-passing form.
#[derive(Debug, Clone)]
pub struct SsspMsg {
    /// Source vertex.
    pub source: VertexId,
}

impl SsspMsg {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl MessageProgram for SsspMsg {
    fn name(&self) -> &'static str {
        "sssp"
    }
    fn initial_value(&self, v: VertexId, _n: u64, _d: u32) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }
    fn message(&self, src_value: f64, _d: u32, weight: f32) -> Option<f64> {
        src_value.is_finite().then(|| src_value + f64::from(weight))
    }
    fn combiner(&self) -> MessageCombiner {
        MessageCombiner::Min
    }
    fn apply(&self, current: f64, received: Option<f64>, _n: u64) -> f64 {
        match received {
            Some(r) => current.min(r),
            None => current,
        }
    }
    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }
}

/// BFS levels in message-passing form.
#[derive(Debug, Clone)]
pub struct BfsMsg {
    /// Source vertex.
    pub source: VertexId,
}

impl BfsMsg {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl MessageProgram for BfsMsg {
    fn name(&self) -> &'static str {
        "bfs"
    }
    fn initial_value(&self, v: VertexId, _n: u64, _d: u32) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }
    fn message(&self, src_value: f64, _d: u32, _w: f32) -> Option<f64> {
        src_value.is_finite().then_some(src_value + 1.0)
    }
    fn combiner(&self) -> MessageCombiner {
        MessageCombiner::Min
    }
    fn apply(&self, current: f64, received: Option<f64>, _n: u64) -> f64 {
        match received {
            Some(r) => current.min(r),
            None => current,
        }
    }
    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }
}

/// Connected components by min-label propagation in message-passing form.
#[derive(Debug, Clone, Default)]
pub struct WccMsg;

impl MessageProgram for WccMsg {
    fn name(&self) -> &'static str {
        "wcc"
    }
    fn initial_value(&self, v: VertexId, _n: u64, _d: u32) -> f64 {
        f64::from(v)
    }
    fn message(&self, src_value: f64, _d: u32, _w: f32) -> Option<f64> {
        Some(src_value)
    }
    fn combiner(&self) -> MessageCombiner {
        MessageCombiner::Min
    }
    fn apply(&self, current: f64, received: Option<f64>, _n: u64) -> f64 {
        match received {
            Some(r) => current.min(r),
            None => current,
        }
    }
    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combiners_have_correct_identities() {
        assert_eq!(MessageCombiner::Sum.identity(), 0.0);
        assert_eq!(MessageCombiner::Min.identity(), f64::INFINITY);
        assert_eq!(MessageCombiner::Sum.combine(1.0, 2.5), 3.5);
        assert_eq!(MessageCombiner::Min.combine(1.0, 2.5), 1.0);
    }

    #[test]
    fn pagerank_messages_divide_by_out_degree() {
        let p = PageRankMsg::new(5);
        assert_eq!(p.message(0.5, 2, 1.0), Some(0.25));
        assert_eq!(p.message(0.5, 0, 1.0), None);
        assert_eq!(p.max_supersteps(), 5);
        let applied = p.apply(0.0, Some(0.4), 10);
        assert!((applied - (0.015 + 0.85 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn sssp_messages_only_from_reached_vertices() {
        let p = SsspMsg::new(0);
        assert_eq!(p.message(f64::INFINITY, 3, 2.0), None);
        assert_eq!(p.message(5.0, 3, 2.0), Some(7.0));
        assert_eq!(p.apply(10.0, Some(7.0), 100), 7.0);
        assert_eq!(p.apply(10.0, None, 100), 10.0);
        assert!(p.is_update(10.0, 7.0));
        assert!(!p.is_update(7.0, 7.0));
    }

    #[test]
    fn wcc_and_bfs_use_min_combiner() {
        assert_eq!(WccMsg.combiner(), MessageCombiner::Min);
        assert_eq!(BfsMsg::new(0).combiner(), MessageCombiner::Min);
        assert_eq!(BfsMsg::new(0).message(2.0, 1, 9.0), Some(3.0));
        assert_eq!(WccMsg.message(4.0, 1, 9.0), Some(4.0));
    }
}
