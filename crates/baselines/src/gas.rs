//! PowerGraph and PowerLyra: vertex-cut GAS engines (paper §II-B.2, §II-C.2).
//!
//! Edges are partitioned across servers (vertex-cut); a vertex that has edges on
//! several servers is replicated there, with one replica designated the master.
//! A superstep costs two rounds of network traffic per replicated vertex: mirrors
//! push partial gather results to the master, the master pushes the applied value
//! back (2·M·|V| messages for PageRank, where M is the replication factor).
//!
//! * **PowerGraph** places edges by hashing the (source, target) pair — the random
//!   vertex-cut.
//! * **PowerLyra** uses the hybrid cut: edges pointing at low-degree targets are
//!   placed by the *target* vertex (so low-degree vertices are not cut at all), and
//!   only high-degree targets get their in-edges spread by source.

use crate::costsheet::{CostSheet, SystemKind};
use crate::program::MessageProgram;
use crate::BaselineRunResult;
use graphh_cluster::{ClusterConfig, ClusterMetrics, CostModel, SuperstepReport};
use graphh_graph::ids::{vertex_hash_server, VertexId};
use graphh_graph::Graph;

/// Edge placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutStrategy {
    /// Random vertex-cut (PowerGraph).
    Random,
    /// Hybrid cut (PowerLyra): low-degree targets keep all their in-edges local.
    Hybrid {
        /// In-degree above which a vertex counts as high-degree and is cut by source.
        high_degree_threshold: u32,
    },
}

impl CutStrategy {
    /// PowerLyra's default threshold (100 in the original system).
    pub fn hybrid_default() -> Self {
        CutStrategy::Hybrid {
            high_degree_threshold: 100,
        }
    }
}

/// Configuration of a GAS run.
#[derive(Debug, Clone, Copy)]
pub struct GasConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Edge placement strategy.
    pub cut: CutStrategy,
    /// Cap on supersteps.
    pub max_supersteps: Option<u32>,
}

impl GasConfig {
    /// PowerGraph on the given cluster.
    pub fn powergraph(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            cut: CutStrategy::Random,
            max_supersteps: None,
        }
    }

    /// PowerLyra on the given cluster.
    pub fn powerlyra(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            cut: CutStrategy::hybrid_default(),
            max_supersteps: None,
        }
    }

    fn system_kind(&self) -> SystemKind {
        match self.cut {
            CutStrategy::Random => SystemKind::PowerGraph,
            CutStrategy::Hybrid { .. } => SystemKind::PowerLyra,
        }
    }
}

/// Bytes of one replica-sync message (vertex id + value).
const SYNC_BYTES: u64 = 12;

/// The GAS engine.
#[derive(Debug, Clone)]
pub struct GasEngine {
    config: GasConfig,
}

impl GasEngine {
    /// An engine with the given configuration.
    pub fn new(config: GasConfig) -> Self {
        Self { config }
    }

    /// Place an edge on a server according to the cut strategy.
    fn edge_server(&self, src: VertexId, dst: VertexId, in_degrees: &[u32]) -> u32 {
        let n = self.config.cluster.num_servers;
        match self.config.cut {
            CutStrategy::Random => {
                // Hash the edge (both endpoints) for a random vertex-cut.
                vertex_hash_server(src ^ dst.rotate_left(16), n)
            }
            CutStrategy::Hybrid {
                high_degree_threshold,
            } => {
                if in_degrees[dst as usize] > high_degree_threshold {
                    vertex_hash_server(src, n)
                } else {
                    vertex_hash_server(dst, n)
                }
            }
        }
    }

    /// Measured replication factor of the placement on this graph.
    pub fn replication_factor(&self, graph: &Graph) -> f64 {
        let n = graph.num_vertices() as usize;
        if n == 0 {
            return 1.0;
        }
        let replicas = self.replica_counts(graph);
        let total: u64 = replicas.iter().map(|&r| u64::from(r.max(1))).sum();
        total as f64 / n as f64
    }

    /// Number of servers each vertex appears on (0 for isolated vertices).
    fn replica_counts(&self, graph: &Graph) -> Vec<u32> {
        let n = graph.num_vertices() as usize;
        let num_servers = self.config.cluster.num_servers as usize;
        let in_degrees = graph.in_degrees();
        let mut present = vec![0u64; n]; // bitset over servers (≤ 64 servers supported)
        assert!(
            num_servers <= 64,
            "the GAS baseline models at most 64 servers"
        );
        for e in graph.edges().iter() {
            let s = self.edge_server(e.src, e.dst, in_degrees) as u64;
            present[e.src as usize] |= 1 << s;
            present[e.dst as usize] |= 1 << s;
        }
        present.iter().map(|&mask| mask.count_ones()).collect()
    }

    /// Run `program` on `graph`.
    pub fn run(&self, graph: &Graph, program: &dyn MessageProgram) -> BaselineRunResult {
        let n = graph.num_vertices() as usize;
        let num_servers = self.config.cluster.num_servers;
        let csc = graph.to_csc();
        let out_degrees = graph.out_degrees();
        let in_degrees = graph.in_degrees();
        let replica_counts = self.replica_counts(graph);
        // Masters are placed by vertex hash, like the mirrors' parent assignment.
        let master: Vec<u32> = (0..n as u32)
            .map(|v| vertex_hash_server(v, num_servers))
            .collect();

        let mut values: Vec<f64> = (0..n as u32)
            .map(|v| program.initial_value(v, n as u64, out_degrees[v as usize]))
            .collect();
        let mut active = vec![true; n];
        let combiner = program.combiner();
        let cost_model = CostModel::new(self.config.cluster);
        let mut metrics = ClusterMetrics::default();
        let max_supersteps = self
            .config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());
        let mut supersteps_run = 0;
        let per_server_memory = CostSheet::new(&graph.stats(), self.config.cluster)
            .per_server_memory_bytes(self.config.system_kind());

        for superstep in 0..max_supersteps {
            let mut report = SuperstepReport::new(superstep, num_servers);
            let mut updated = 0u64;
            let mut next_values = values.clone();
            let mut next_active = vec![false; n];

            for v in 0..n as u32 {
                if !active[v as usize] {
                    continue;
                }
                // Gather runs on every server holding in-edges of v; the edge itself
                // is charged to the server it was placed on.
                let mut accum = combiner.identity();
                let mut got = false;
                for (src, w) in csc.in_neighbors_weighted(v) {
                    let server = self.edge_server(src, v, in_degrees) as usize;
                    report.servers[server].edges_processed += 1;
                    if let Some(msg) =
                        program.message(values[src as usize], out_degrees[src as usize], w)
                    {
                        accum = combiner.combine(accum, msg);
                        got = true;
                    }
                }
                // Replica synchronisation: mirrors → master (partial gather results)
                // and master → mirrors (new value). 2 × (replicas − 1) messages.
                let mirrors = u64::from(replica_counts[v as usize].saturating_sub(1));
                let master_server = master[v as usize] as usize;
                report.servers[master_server].network_sent_bytes += mirrors * SYNC_BYTES;
                report.servers[master_server].network_received_bytes += mirrors * SYNC_BYTES;
                report.servers[master_server].messages_produced += 2 * mirrors;

                let new = program.apply(values[v as usize], got.then_some(accum), n as u64);
                if program.is_update(values[v as usize], new) {
                    updated += 1;
                    next_values[v as usize] = new;
                    // Scatter: activate out-neighbours.
                    next_active[v as usize] = true;
                } else {
                    next_values[v as usize] = new;
                }
            }

            // Scatter phase: an updated vertex activates its out-neighbours.
            let csr = graph.to_csr();
            let mut scattered = vec![false; n];
            for v in 0..n as u32 {
                if next_active[v as usize] {
                    for &dst in csr.neighbors(v) {
                        scattered[dst as usize] = true;
                    }
                }
            }
            // Fixed-iteration programs keep everything active.
            let keep_all = program.all_active_initially() && program.max_supersteps() != u32::MAX;
            for v in 0..n {
                active[v] = keep_all || scattered[v] || next_active[v];
            }
            values = next_values;

            report.total_vertices_updated = updated;
            for server in report.servers.iter_mut() {
                server.vertices_updated = updated;
                server.peak_memory_bytes = per_server_memory;
                // Replica syncs are batched into one physical exchange with every
                // other server per phase (gather result + apply broadcast).
                if num_servers > 1 {
                    server.network_messages += 2 * u64::from(num_servers - 1);
                }
            }
            let report = cost_model.finalize(report);
            metrics.push(report);
            supersteps_run = superstep + 1;
            if updated == 0 {
                break;
            }
        }

        BaselineRunResult {
            values,
            metrics,
            supersteps_run,
            per_server_memory_bytes: per_server_memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PageRankMsg, SsspMsg, WccMsg};
    use graphh_core::reference;
    use graphh_graph::generators::{grid_graph, GraphGenerator, RmatGenerator};

    fn cluster(n: u32) -> ClusterConfig {
        ClusterConfig::paper_testbed(n)
    }

    #[test]
    fn powergraph_pagerank_matches_reference() {
        let g = RmatGenerator::new(8, 5).generate(13);
        let engine = GasEngine::new(GasConfig::powergraph(cluster(4)));
        let result = engine.run(&g, &PageRankMsg::new(6));
        assert!(reference::max_abs_diff(&result.values, &reference::pagerank(&g, 6)) < 1e-9);
    }

    #[test]
    fn powerlyra_sssp_and_wcc_match_reference() {
        let g = grid_graph(6, 6);
        let engine = GasEngine::new(GasConfig::powerlyra(cluster(3)));
        let sssp = engine.run(&g, &SsspMsg::new(0));
        assert_eq!(
            reference::max_abs_diff(&sssp.values, &reference::sssp(&g, 0)),
            0.0
        );
        let wcc = engine.run(&g, &WccMsg);
        assert_eq!(
            reference::max_abs_diff(&wcc.values, &reference::wcc(&g)),
            0.0
        );
    }

    #[test]
    fn replication_factor_grows_with_cluster_size() {
        let g = RmatGenerator::new(9, 8).generate(2);
        let small = GasEngine::new(GasConfig::powergraph(cluster(2))).replication_factor(&g);
        let large = GasEngine::new(GasConfig::powergraph(cluster(9))).replication_factor(&g);
        assert!(large > small, "replication {small} -> {large}");
        assert!(small >= 1.0);
        assert!(large <= 9.0);
    }

    #[test]
    fn hybrid_cut_replicates_less_than_random_cut() {
        // PowerLyra's selling point: lower replication factor on skewed graphs.
        let g = RmatGenerator::new(9, 8).generate(7);
        let random = GasEngine::new(GasConfig::powergraph(cluster(9))).replication_factor(&g);
        let hybrid = GasEngine::new(GasConfig::powerlyra(cluster(9))).replication_factor(&g);
        assert!(
            hybrid < random,
            "hybrid cut {hybrid} should beat random cut {random}"
        );
    }

    #[test]
    fn network_traffic_scales_with_replication_not_edges() {
        let g = RmatGenerator::new(8, 10).generate(5);
        let engine = GasEngine::new(GasConfig::powergraph(cluster(4)));
        let m = engine.replication_factor(&g);
        let result = engine.run(&g, &PageRankMsg::new(2));
        for report in &result.metrics.supersteps {
            let messages: u64 = report.servers.iter().map(|s| s.network_messages).sum();
            let bound = (2.0 * m * g.num_vertices() as f64 * 1.05) as u64 + 16;
            assert!(messages <= bound, "messages {messages} bound {bound}");
        }
    }

    #[test]
    fn single_server_has_no_sync_traffic() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let engine = GasEngine::new(GasConfig::powergraph(cluster(1)));
        let result = engine.run(&g, &PageRankMsg::new(3));
        assert_eq!(result.metrics.total_network_bytes(), 0);
        assert!((engine.replication_factor(&g) - 1.0).abs() < 1e-9);
    }
}
