//! Closed-form memory / traffic models for every evaluated system (Table III and
//! Figure 1a).
//!
//! The asymptotic entries of Table III are turned into byte formulas using each
//! system's per-record sizes. The per-vertex / per-edge constants are calibrated so
//! that the UK-2007 / 9-server configuration of Figure 1a is reproduced (Giraph
//! 795 GB, GraphX 685 GB, PowerGraph 357 GB, PowerLyra 511 GB, Pregel+ 281 GB,
//! GraphD 73 GB, Chaos 26 GB); the same constants are then applied to every other
//! dataset and cluster size, which is exactly how the paper extrapolates ("to
//! process big graphs like EU-2015, these in-memory approaches require a large
//! cluster with at least 5 TB memory").

use graphh_cluster::ClusterConfig;
use graphh_graph::GraphStats;
use serde::{Deserialize, Serialize};

/// The systems compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Apache Giraph (in-memory, Hadoop-based Pregel).
    Giraph,
    /// Spark GraphX (in-memory, dataflow).
    GraphX,
    /// PowerGraph (in-memory, vertex-cut GAS).
    PowerGraph,
    /// PowerLyra (in-memory, hybrid-cut GAS).
    PowerLyra,
    /// Pregel+ (in-memory Pregel with message combining).
    PregelPlus,
    /// GraphD (out-of-core Pregel).
    GraphD,
    /// Chaos (out-of-core edge-centric GAS).
    Chaos,
    /// GraphH (this paper).
    GraphH,
}

impl SystemKind {
    /// All systems, in Figure 1a order.
    pub const ALL: [SystemKind; 8] = [
        SystemKind::Giraph,
        SystemKind::GraphX,
        SystemKind::PowerGraph,
        SystemKind::PowerLyra,
        SystemKind::PregelPlus,
        SystemKind::GraphD,
        SystemKind::Chaos,
        SystemKind::GraphH,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Giraph => "Giraph",
            SystemKind::GraphX => "GraphX",
            SystemKind::PowerGraph => "PowerGraph",
            SystemKind::PowerLyra => "PowerLyra",
            SystemKind::PregelPlus => "Pregel+",
            SystemKind::GraphD => "GraphD",
            SystemKind::Chaos => "Chaos",
            SystemKind::GraphH => "GraphH",
        }
    }

    /// Whether the system keeps the whole graph (and messages) in memory.
    pub fn is_in_memory(self) -> bool {
        matches!(
            self,
            SystemKind::Giraph
                | SystemKind::GraphX
                | SystemKind::PowerGraph
                | SystemKind::PowerLyra
                | SystemKind::PregelPlus
        )
    }
}

/// Evaluates Table III's rows in bytes for one graph on one cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostSheet {
    /// Vertices in the graph.
    pub num_vertices: u64,
    /// Edges in the graph.
    pub num_edges: u64,
    /// Average degree.
    pub avg_degree: f64,
    /// Cluster the job runs on.
    pub cluster: ClusterConfig,
}

impl CostSheet {
    /// A cost sheet for `stats` on `cluster`.
    pub fn new(stats: &GraphStats, cluster: ClusterConfig) -> Self {
        Self {
            num_vertices: stats.num_vertices,
            num_edges: stats.num_edges,
            avg_degree: stats.avg_degree,
            cluster,
        }
    }

    /// The Pregel-style message combining ratio η for this graph and cluster.
    pub fn eta(&self) -> f64 {
        self.cluster.combining_ratio(self.avg_degree)
    }

    /// The average vertex replication factor M for vertex-cut systems. PowerGraph's
    /// random vertex-cut on a cluster of N servers replicates a vertex of degree d on
    /// roughly `N (1 - (1 - 1/N)^(d/ ...))` servers; for the paper's graphs the
    /// empirical value is well approximated by `min(N, sqrt(N) * 2)` for PowerGraph
    /// and about 60% of that for PowerLyra's hybrid cut.
    pub fn replication_factor(&self, system: SystemKind) -> f64 {
        let n = f64::from(self.cluster.num_servers);
        let base = (2.0 * n.sqrt()).min(n).max(1.0);
        match system {
            SystemKind::PowerLyra => (0.6 * base).max(1.0),
            _ => base,
        }
    }

    /// Total cluster memory in bytes the system needs to run PageRank on this graph
    /// (the quantity Figure 1a reports).
    ///
    /// Per-record constants (bytes): calibrated against Figure 1a on UK-2007, see the
    /// module documentation.
    pub fn total_memory_bytes(&self, system: SystemKind) -> u64 {
        let v = self.num_vertices as f64;
        let e = self.num_edges as f64;
        let n = f64::from(self.cluster.num_servers);
        let eta = self.eta();
        let bytes = match system {
            // Java object overheads dominate Hadoop/Spark-based systems.
            SystemKind::Giraph => v * 200.0 + e * 140.0,
            SystemKind::GraphX => v * 180.0 + e * 120.0,
            // 2|E| edge storage + M|V| replicated vertex states + M|V| messages.
            SystemKind::PowerGraph | SystemKind::PowerLyra => {
                let m = self.replication_factor(system);
                let per_edge = if system == SystemKind::PowerGraph {
                    28.0
                } else {
                    40.0
                };
                2.0 * e * per_edge + m * v * 48.0
            }
            // |V| states + |E| adjacency + (η|E| + |V|) combined messages.
            SystemKind::PregelPlus => v * 24.0 + e * 20.0 + (eta * e + v) * 16.0,
            // Vertex states + per-server streaming buffers (bounded by the on-disk
            // adjacency size for small graphs); edges and messages live on disk.
            SystemKind::GraphD => v * 24.0 + (n * 8.0 * 1e9).min(e * 8.0),
            // |V|/P resident vertex states + per-server stream buffers (same bound).
            SystemKind::Chaos => v * 16.0 + (n * 3.0 * 1e9).min(e * 12.0),
            // All-in-All replicas on every server + per-worker tile buffers (no cache).
            SystemKind::GraphH => {
                n * (v * 20.0) + n * f64::from(self.cluster.machine.workers) * 25_000_000.0 * 4.0
            }
        };
        bytes as u64
    }

    /// Per-server memory in bytes (total divided by the server count).
    pub fn per_server_memory_bytes(&self, system: SystemKind) -> u64 {
        self.total_memory_bytes(system) / u64::from(self.cluster.num_servers)
    }

    /// Network bytes per PageRank superstep across the cluster (Table III "Network").
    pub fn network_bytes_per_superstep(&self, system: SystemKind) -> u64 {
        let v = self.num_vertices as f64;
        let e = self.num_edges as f64;
        let n = f64::from(self.cluster.num_servers);
        let eta = self.eta();
        let bytes = match system {
            SystemKind::Giraph | SystemKind::GraphX => e * 12.0,
            SystemKind::PregelPlus | SystemKind::GraphD => eta * e * 12.0,
            SystemKind::PowerGraph | SystemKind::PowerLyra => {
                2.0 * self.replication_factor(system) * v * 12.0
            }
            SystemKind::Chaos => (3.0 * e + 3.0 * v) * 8.0,
            SystemKind::GraphH => (n - 1.0).max(0.0) * v * 8.0,
        };
        bytes as u64
    }

    /// Disk bytes read per PageRank superstep across the cluster (Table III "Disk Read"),
    /// assuming a cache miss ratio of `beta` for GraphH.
    pub fn disk_read_bytes_per_superstep(&self, system: SystemKind, beta: f64) -> u64 {
        let v = self.num_vertices as f64;
        let e = self.num_edges as f64;
        let bytes = match system {
            s if s.is_in_memory() => 0.0,
            SystemKind::GraphD => 2.0 * e * 8.0,
            SystemKind::Chaos => (2.0 * e + 2.0 * v) * 8.0,
            SystemKind::GraphH => beta.clamp(0.0, 1.0) * e * 4.0,
            _ => 0.0,
        };
        bytes as u64
    }

    /// Disk bytes written per PageRank superstep across the cluster.
    pub fn disk_write_bytes_per_superstep(&self, system: SystemKind) -> u64 {
        let v = self.num_vertices as f64;
        let e = self.num_edges as f64;
        let bytes = match system {
            SystemKind::GraphD => e * 8.0,
            SystemKind::Chaos => (e + v) * 8.0,
            _ => 0.0,
        };
        bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_graph::datasets::Dataset;

    fn sheet(dataset: Dataset, servers: u32) -> CostSheet {
        CostSheet::new(
            &dataset.paper_stats(),
            ClusterConfig::paper_testbed(servers),
        )
    }

    #[test]
    fn fig1a_memory_ordering_reproduced_for_uk2007() {
        let s = sheet(Dataset::Uk2007, 9);
        let gb = |sys| s.total_memory_bytes(sys) as f64 / 1e9;
        // Paper, Figure 1a: Giraph 795, GraphX 685, PowerGraph 357, PowerLyra 511,
        // Pregel+ 281, GraphD 73, Chaos 26 (GB). Require the ordering and rough
        // magnitudes (within ~40%).
        let giraph = gb(SystemKind::Giraph);
        let graphx = gb(SystemKind::GraphX);
        let powergraph = gb(SystemKind::PowerGraph);
        let powerlyra = gb(SystemKind::PowerLyra);
        let pregel = gb(SystemKind::PregelPlus);
        let graphd = gb(SystemKind::GraphD);
        let chaos = gb(SystemKind::Chaos);
        assert!(
            giraph > graphx && graphx > powerlyra,
            "{giraph} {graphx} {powerlyra}"
        );
        assert!(powerlyra > powergraph && powergraph > pregel);
        assert!(pregel > graphd && graphd > chaos);
        for (value, paper) in [
            (giraph, 795.0),
            (graphx, 685.0),
            (powergraph, 357.0),
            (powerlyra, 511.0),
            (pregel, 281.0),
            (graphd, 73.0),
            (chaos, 26.0),
        ] {
            assert!(
                value > paper * 0.5 && value < paper * 1.6,
                "memory {value} GB vs paper {paper} GB"
            );
        }
    }

    #[test]
    fn in_memory_systems_cannot_fit_eu2015_in_nine_nodes() {
        // The paper's motivation: EU-2015 needs roughly 5 TB of memory on in-memory
        // systems, far beyond the 9-node testbed's 1.15 TB.
        let s = sheet(Dataset::Eu2015, 9);
        let testbed_total = s.cluster.total_memory_bytes();
        for sys in SystemKind::ALL.iter().filter(|s| s.is_in_memory()) {
            assert!(
                s.total_memory_bytes(*sys) > testbed_total,
                "{} should not fit",
                sys.name()
            );
        }
        // The out-of-core systems and GraphH do fit.
        for sys in [SystemKind::GraphD, SystemKind::Chaos, SystemKind::GraphH] {
            assert!(s.total_memory_bytes(sys) < testbed_total, "{}", sys.name());
        }
    }

    #[test]
    fn graphh_network_is_independent_of_edge_count() {
        let s = sheet(Dataset::Uk2007, 9);
        let graphh = s.network_bytes_per_superstep(SystemKind::GraphH);
        let pregel = s.network_bytes_per_superstep(SystemKind::PregelPlus);
        let chaos = s.network_bytes_per_superstep(SystemKind::Chaos);
        // GraphH broadcasts O(N|V|); the others move O(|E|)-scale traffic, which for
        // web graphs (avg degree 41) is an order of magnitude more.
        assert!(graphh < pregel / 2, "graphh {graphh} vs pregel {pregel}");
        assert!(graphh < chaos / 10);
    }

    #[test]
    fn out_of_core_disk_traffic_matches_table3_shape() {
        let s = sheet(Dataset::Uk2007, 9);
        assert_eq!(
            s.disk_read_bytes_per_superstep(SystemKind::PregelPlus, 0.0),
            0
        );
        let graphd = s.disk_read_bytes_per_superstep(SystemKind::GraphD, 0.0);
        let chaos = s.disk_read_bytes_per_superstep(SystemKind::Chaos, 0.0);
        let graphh_cold = s.disk_read_bytes_per_superstep(SystemKind::GraphH, 1.0);
        let graphh_warm = s.disk_read_bytes_per_superstep(SystemKind::GraphH, 0.0);
        assert!(chaos > graphd);
        assert!(
            graphh_cold < graphd,
            "even a cold GraphH cache reads less (4 B/edge)"
        );
        assert_eq!(graphh_warm, 0);
        assert!(s.disk_write_bytes_per_superstep(SystemKind::GraphD) > 0);
        assert_eq!(s.disk_write_bytes_per_superstep(SystemKind::GraphH), 0);
    }

    #[test]
    fn replication_factor_smaller_for_powerlyra() {
        let s = sheet(Dataset::Twitter2010, 9);
        assert!(
            s.replication_factor(SystemKind::PowerLyra)
                < s.replication_factor(SystemKind::PowerGraph)
        );
        let single = sheet(Dataset::Twitter2010, 1);
        assert!((single.replication_factor(SystemKind::PowerGraph) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eta_is_a_valid_ratio() {
        let s = sheet(Dataset::Eu2015, 9);
        let eta = s.eta();
        assert!(eta > 0.0 && eta <= 1.0);
    }
}
