//! Pregel+ and GraphD: hash-partitioned, message-passing engines (paper §II-B.1,
//! §II-C.1).
//!
//! Both systems hash vertices (and their out-adjacency lists) onto servers and send
//! messages along out-edges, combining messages with the same target on the sender
//! side. The difference is storage:
//!
//! * **Pregel+** keeps adjacency lists and messages in memory,
//! * **GraphD** streams adjacency lists from disk every superstep and spills the
//!   produced messages to disk before sending them (and digests incoming messages
//!   through a small in-memory buffer).
//!
//! The engine executes the algorithm for real (synchronous semantics, identical
//! results to the GraphH engine) and meters traffic according to the selected
//! storage model.

use crate::costsheet::{CostSheet, SystemKind};
use crate::program::MessageProgram;
use crate::BaselineRunResult;
use graphh_cluster::{ClusterConfig, ClusterMetrics, CostModel, SuperstepReport};
use graphh_graph::ids::vertex_hash_server;
use graphh_graph::Graph;
use std::collections::HashSet;

/// Where Pregel-model engines keep edges and messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PregelStorage {
    /// Everything in memory (Pregel+).
    InMemory,
    /// Adjacency and messages on disk (GraphD).
    OutOfCore,
}

/// Configuration of a Pregel-model run.
#[derive(Debug, Clone, Copy)]
pub struct PregelConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Storage model (Pregel+ vs GraphD).
    pub storage: PregelStorage,
    /// Cap on supersteps (in addition to the program's own limit).
    pub max_supersteps: Option<u32>,
}

impl PregelConfig {
    /// Pregel+ on the given cluster.
    pub fn pregel_plus(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            storage: PregelStorage::InMemory,
            max_supersteps: None,
        }
    }

    /// GraphD on the given cluster.
    pub fn graphd(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            storage: PregelStorage::OutOfCore,
            max_supersteps: None,
        }
    }

    fn system_kind(&self) -> SystemKind {
        match self.storage {
            PregelStorage::InMemory => SystemKind::PregelPlus,
            PregelStorage::OutOfCore => SystemKind::GraphD,
        }
    }
}

/// The Pregel-model engine.
#[derive(Debug, Clone)]
pub struct PregelEngine {
    config: PregelConfig,
}

/// Bytes of one message on the wire / on disk (target id + value).
const MESSAGE_BYTES: u64 = 12;
/// Bytes of one adjacency entry on disk (neighbour id + weight).
const ADJACENCY_BYTES: u64 = 8;

impl PregelEngine {
    /// An engine with the given configuration.
    pub fn new(config: PregelConfig) -> Self {
        Self { config }
    }

    /// Run `program` on `graph`.
    pub fn run(&self, graph: &Graph, program: &dyn MessageProgram) -> BaselineRunResult {
        let n = graph.num_vertices() as usize;
        let num_servers = self.config.cluster.num_servers;
        let csr = graph.to_csr();
        let out_degrees = graph.out_degrees();
        let owner: Vec<u32> = (0..n as u32)
            .map(|v| vertex_hash_server(v, num_servers))
            .collect();

        let mut values: Vec<f64> = (0..n as u32)
            .map(|v| program.initial_value(v, n as u64, out_degrees[v as usize]))
            .collect();
        let mut active: Vec<bool> = vec![program.all_active_initially(); n];
        if !program.all_active_initially() {
            // At minimum the vertices whose initial value differs from the combiner
            // identity are active (e.g. the SSSP source).
            for (v, flag) in active.iter_mut().enumerate() {
                *flag = values[v].is_finite() && values[v] == 0.0;
            }
        }

        let cost_model = CostModel::new(self.config.cluster);
        let mut metrics = ClusterMetrics::default();
        let max_supersteps = self
            .config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());
        let combiner = program.combiner();
        let mut supersteps_run = 0;

        for superstep in 0..max_supersteps {
            let mut report = SuperstepReport::new(superstep, num_servers);
            let mut combined: Vec<f64> = vec![combiner.identity(); n];
            let mut got_message = vec![false; n];
            // Sender-side combining: one outgoing message per (target, sender server).
            let mut wire_messages: HashSet<u64> = HashSet::new();

            for src in 0..n as u32 {
                if !active[src as usize] {
                    continue;
                }
                let src_server = owner[src as usize] as usize;
                let d = out_degrees[src as usize];
                report.servers[src_server].edges_processed += u64::from(d);
                for (dst, w) in csr.neighbors_weighted(src) {
                    if let Some(msg) = program.message(values[src as usize], d, w) {
                        combined[dst as usize] = combiner.combine(combined[dst as usize], msg);
                        got_message[dst as usize] = true;
                        report.servers[src_server].messages_produced += 1;
                        let dst_server = owner[dst as usize];
                        if dst_server != src_server as u32 {
                            // Key encodes (target, sender server).
                            wire_messages.insert(
                                u64::from(dst) * u64::from(num_servers)
                                    + u64::from(src_server as u32),
                            );
                        }
                    }
                }
            }
            // Charge network traffic: each combined remote message crosses the wire
            // once. Messages to the same destination server are batched into one
            // physical transfer per (sender, receiver) pair, as Pregel+ does.
            let mut pairs: HashSet<(usize, usize)> = HashSet::new();
            for key in &wire_messages {
                let sender = (key % u64::from(num_servers)) as usize;
                let target = (key / u64::from(num_servers)) as usize;
                let receiver = owner[target] as usize;
                report.servers[sender].network_sent_bytes += MESSAGE_BYTES;
                report.servers[receiver].network_received_bytes += MESSAGE_BYTES;
                pairs.insert((sender, receiver));
            }
            for (sender, _) in pairs {
                report.servers[sender].network_messages += 1;
            }

            // GraphD: adjacency lists of active vertices are streamed from disk and
            // produced messages are written to, then read from, local disk.
            if self.config.storage == PregelStorage::OutOfCore {
                for src in 0..n as u32 {
                    if !active[src as usize] {
                        continue;
                    }
                    let server = owner[src as usize] as usize;
                    let d = u64::from(out_degrees[src as usize]);
                    report.servers[server].disk_read_bytes += d * ADJACENCY_BYTES;
                }
                for server in report.servers.iter_mut() {
                    // Every produced message is staged on disk at the sender and the
                    // combined stream is re-read before sending.
                    server.disk_write_bytes += server.messages_produced * MESSAGE_BYTES;
                    server.disk_read_bytes += server.messages_produced * MESSAGE_BYTES;
                    server.disk_read_ops += 1;
                    server.disk_write_ops += 1;
                }
            }

            // Apply phase.
            let mut next_active = vec![false; n];
            let mut updated = 0u64;
            for v in 0..n {
                let received = got_message[v].then_some(combined[v]);
                if received.is_none() && !active[v] && !program.all_active_initially() {
                    continue;
                }
                let new = program.apply(values[v], received, n as u64);
                if program.is_update(values[v], new) {
                    next_active[v] = true;
                    updated += 1;
                    values[v] = new;
                } else if program.all_active_initially() && program.max_supersteps() != u32::MAX {
                    // Fixed-iteration programs (PageRank) keep every vertex active.
                    next_active[v] = true;
                    values[v] = new;
                } else {
                    values[v] = new;
                }
            }
            report.total_vertices_updated = updated;
            for server in report.servers.iter_mut() {
                server.vertices_updated = updated;
                server.peak_memory_bytes = self.per_server_memory(graph);
            }

            let report = cost_model.finalize(report);
            metrics.push(report);
            active = next_active;
            supersteps_run = superstep + 1;
            if updated == 0 {
                break;
            }
        }

        BaselineRunResult {
            values,
            metrics,
            supersteps_run,
            per_server_memory_bytes: self.per_server_memory(graph),
        }
    }

    fn per_server_memory(&self, graph: &Graph) -> u64 {
        CostSheet::new(&graph.stats(), self.config.cluster)
            .per_server_memory_bytes(self.config.system_kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BfsMsg, PageRankMsg, SsspMsg, WccMsg};
    use graphh_core::reference;
    use graphh_graph::generators::{grid_graph, path_graph, GraphGenerator, RmatGenerator};

    fn cluster(n: u32) -> ClusterConfig {
        ClusterConfig::paper_testbed(n)
    }

    #[test]
    fn pregel_pagerank_matches_reference() {
        let g = RmatGenerator::new(8, 5).generate(3);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(3)));
        let result = engine.run(&g, &PageRankMsg::new(8));
        let expected = reference::pagerank(&g, 8);
        assert!(reference::max_abs_diff(&result.values, &expected) < 1e-9);
        assert_eq!(result.supersteps_run, 8);
    }

    #[test]
    fn pregel_sssp_and_bfs_match_reference() {
        let g = grid_graph(5, 6);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(4)));
        let sssp = engine.run(&g, &SsspMsg::new(0));
        assert_eq!(
            reference::max_abs_diff(&sssp.values, &reference::sssp(&g, 0)),
            0.0
        );
        let bfs = engine.run(&g, &BfsMsg::new(0));
        assert_eq!(
            reference::max_abs_diff(&bfs.values, &reference::bfs(&g, 0)),
            0.0
        );
    }

    #[test]
    fn pregel_wcc_matches_reference_on_symmetric_graph() {
        let g = grid_graph(4, 4);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(2)));
        let wcc = engine.run(&g, &WccMsg);
        assert_eq!(
            reference::max_abs_diff(&wcc.values, &reference::wcc(&g)),
            0.0
        );
    }

    #[test]
    fn graphd_computes_same_values_but_reads_disk() {
        let g = RmatGenerator::new(7, 6).generate(4);
        let pregel =
            PregelEngine::new(PregelConfig::pregel_plus(cluster(3))).run(&g, &PageRankMsg::new(5));
        let graphd =
            PregelEngine::new(PregelConfig::graphd(cluster(3))).run(&g, &PageRankMsg::new(5));
        assert!(reference::max_abs_diff(&pregel.values, &graphd.values) < 1e-12);
        assert_eq!(pregel.metrics.total_disk_bytes(), 0);
        assert!(graphd.metrics.total_disk_bytes() > 0);
        // The disk traffic makes GraphD slower under the cost model.
        assert!(graphd.avg_superstep_seconds() > pregel.avg_superstep_seconds());
        // And Pregel+ needs much more memory per server than GraphD.
        assert!(pregel.per_server_memory_bytes > graphd.per_server_memory_bytes);
    }

    #[test]
    fn message_combining_bounds_network_traffic() {
        let g = RmatGenerator::new(8, 8).generate(6);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(4)));
        let result = engine.run(&g, &PageRankMsg::new(2));
        for report in &result.metrics.supersteps {
            let wire = report.total_network_bytes() / MESSAGE_BYTES;
            // Combined traffic can never exceed |E| messages and never exceeds
            // (N-1) * |V| distinct (target, sender) pairs.
            assert!(wire <= g.num_edges());
            assert!(wire <= 3 * g.num_vertices());
        }
    }

    #[test]
    fn sssp_on_path_skips_inactive_vertices() {
        let g = path_graph(50);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(2)));
        let result = engine.run(&g, &SsspMsg::new(0));
        // After the first superstep (where every vertex is active, Pregel-style) only
        // the frontier vertex is active, so edges processed per superstep stay tiny.
        for report in result.metrics.supersteps.iter().skip(1) {
            assert!(report.total_edges_processed() <= 2);
        }
        assert_eq!(
            reference::max_abs_diff(&result.values, &reference::sssp(&g, 0)),
            0.0
        );
    }

    #[test]
    fn single_server_has_no_network_traffic() {
        let g = RmatGenerator::new(6, 4).generate(2);
        let engine = PregelEngine::new(PregelConfig::pregel_plus(cluster(1)));
        let result = engine.run(&g, &PageRankMsg::new(3));
        assert_eq!(result.metrics.total_network_bytes(), 0);
    }
}
