//! # graphh-baselines
//!
//! Re-implementations of the systems the paper compares GraphH against (§II, §V):
//!
//! * [`pregel`] — **Pregel+** (in-memory Pregel with sender-side message combining)
//!   and **GraphD** (the same computation model with adjacency lists and messages
//!   streamed from disk), selected by [`pregel::PregelStorage`],
//! * [`gas`] — **PowerGraph** (random vertex-cut GAS) and **PowerLyra**
//!   (hybrid-cut: only high-degree vertices are cut), selected by
//!   [`gas::CutStrategy`],
//! * [`chaos`] — **Chaos**, the edge-centric streaming GAS engine whose partitions
//!   are spread over the whole cluster so every I/O crosses the network,
//! * [`costsheet`] — the closed-form per-superstep memory / network / disk formulas
//!   of Table III, used both for Figure 1a-style memory reports and as an internal
//!   cross-check of the measured engines,
//! * [`program`] — the message-passing program abstraction these engines share, with
//!   the paper's algorithms (PageRank, SSSP, WCC, BFS) implemented on it.
//!
//! All engines execute their algorithm for real on the in-memory graph and meter the
//! traffic their data layout implies into [`graphh_cluster::ServerMetrics`], exactly
//! like the GraphH engine does, so the comparison figures come from measured runs of
//! faithful implementations rather than from formulas alone.

pub mod chaos;
pub mod costsheet;
pub mod gas;
pub mod pregel;
pub mod program;

pub use chaos::{ChaosConfig, ChaosEngine};
pub use costsheet::{CostSheet, SystemKind};
pub use gas::{CutStrategy, GasConfig, GasEngine};
pub use pregel::{PregelConfig, PregelEngine, PregelStorage};
pub use program::{MessageCombiner, MessageProgram};

/// The result every baseline engine returns, mirroring `graphh_core`'s
/// `RunResult` so the experiment harness can treat all systems uniformly
/// (no intra-doc link: the engines are deliberately decoupled from
/// `graphh-core` outside of tests).
#[derive(Debug, Clone)]
pub struct BaselineRunResult {
    /// Final vertex values.
    pub values: Vec<f64>,
    /// Per-superstep metrics with simulated times filled in.
    pub metrics: graphh_cluster::ClusterMetrics,
    /// Number of supersteps executed.
    pub supersteps_run: u32,
    /// Modelled per-server memory requirement in bytes (what Figure 1a reports).
    pub per_server_memory_bytes: u64,
}

impl BaselineRunResult {
    /// Average simulated seconds per superstep, excluding the first.
    pub fn avg_superstep_seconds(&self) -> f64 {
        self.metrics.avg_seconds_per_superstep(true)
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.metrics.total_seconds()
    }
}
