//! One function per table / figure of the paper's evaluation section.
//!
//! Every function returns a formatted text block (tab-separated rows) so the
//! `report` binary can print it and EXPERIMENTS.md can record it. Engine-driven
//! experiments run on the scaled-down dataset stand-ins (see `workloads`); the
//! analytic tables (Table III/IV, Figure 6a) are additionally evaluated at paper
//! scale, since they only need |V| and |E|.

use crate::workloads::{
    experiment_graph, experiment_spec, partition_for_experiments, run_graphh, EXPERIMENT_SEED,
};
use graphh_baselines::program::{PageRankMsg, SsspMsg};
use graphh_baselines::{
    ChaosConfig, ChaosEngine, CostSheet, GasConfig, GasEngine, PregelConfig, PregelEngine,
    SystemKind,
};
use graphh_cache::CacheMode;
use graphh_cluster::{ClusterConfig, CommunicationMode};
use graphh_compress::{stats::measure_all, Codec};
use graphh_core::replication::{MemoryModel, ReplicationPolicy, VertexSizes};
use graphh_core::{GabProgram, GraphHConfig, GraphHEngine, PageRank, Sssp};
use graphh_graph::datasets::Dataset;
use graphh_graph::ids::VertexId;
use graphh_graph::properties::human_bytes;
use graphh_partition::formats::InputSizes;
use graphh_partition::PartitionedGraph;
use std::fmt::Write as _;

/// Number of PageRank supersteps the paper times (21, dropping the first).
pub const PAGERANK_SUPERSTEPS: u32 = 21;

fn best_source(graph: &graphh_graph::Graph) -> VertexId {
    graph
        .out_degrees()
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(0)
}

/// Table I: benchmark dataset statistics — the paper's values and the stand-ins used
/// throughout the harness.
pub fn table1_datasets() -> String {
    let mut out = String::from(
        "# Table I: benchmark graph datasets (paper scale vs generated stand-in)\n\
         dataset\tpaper |V|\tpaper |E|\tpaper avg deg\tstand-in |V|\tstand-in |E|\tstand-in avg deg\tstand-in max in/out deg\n",
    );
    for d in Dataset::ALL {
        let paper = d.paper_stats();
        let g = experiment_graph(d);
        let s = g.stats();
        writeln!(
            out,
            "{}\t{}\t{}\t{:.1}\t{}\t{}\t{:.1}\t{}/{}",
            d.name(),
            paper.num_vertices,
            paper.num_edges,
            paper.avg_degree,
            s.num_vertices,
            s.num_edges,
            s.avg_degree,
            s.max_in_degree,
            s.max_out_degree
        )
        .unwrap();
    }
    out
}

/// Figure 1a: memory required to run PageRank on UK-2007 with 9 servers, per system
/// (evaluated at paper scale with the calibrated per-record models).
pub fn fig1a_memory_requirements() -> String {
    let sheet = CostSheet::new(
        &Dataset::Uk2007.paper_stats(),
        ClusterConfig::paper_testbed(9),
    );
    let mut out = String::from(
        "# Figure 1a: total memory to run PageRank on UK-2007 (9 servers)\nsystem\ttotal memory\n",
    );
    for sys in SystemKind::ALL {
        writeln!(
            out,
            "{}\t{}",
            sys.name(),
            human_bytes(sheet.total_memory_bytes(sys))
        )
        .unwrap();
    }
    out
}

struct SystemRun {
    name: &'static str,
    avg_seconds: f64,
}

fn run_all_systems_pagerank(
    graph: &graphh_graph::Graph,
    partitioned: &PartitionedGraph,
    servers: u32,
    supersteps: u32,
) -> Vec<SystemRun> {
    let cluster = ClusterConfig::paper_testbed(servers);
    let graphh = run_graphh(partitioned, &PageRank::new(supersteps), servers);
    let pregel = PregelEngine::new(PregelConfig::pregel_plus(cluster))
        .run(graph, &PageRankMsg::new(supersteps));
    let powergraph =
        GasEngine::new(GasConfig::powergraph(cluster)).run(graph, &PageRankMsg::new(supersteps));
    let powerlyra =
        GasEngine::new(GasConfig::powerlyra(cluster)).run(graph, &PageRankMsg::new(supersteps));
    let graphd =
        PregelEngine::new(PregelConfig::graphd(cluster)).run(graph, &PageRankMsg::new(supersteps));
    let chaos =
        ChaosEngine::new(ChaosConfig::new(cluster)).run(graph, &PageRankMsg::new(supersteps));
    vec![
        SystemRun {
            name: "GraphH",
            avg_seconds: graphh.avg_superstep_seconds(),
        },
        SystemRun {
            name: "Pregel+",
            avg_seconds: pregel.avg_superstep_seconds(),
        },
        SystemRun {
            name: "PowerGraph",
            avg_seconds: powergraph.avg_superstep_seconds(),
        },
        SystemRun {
            name: "PowerLyra",
            avg_seconds: powerlyra.avg_superstep_seconds(),
        },
        SystemRun {
            name: "GraphD",
            avg_seconds: graphd.avg_superstep_seconds(),
        },
        SystemRun {
            name: "Chaos",
            avg_seconds: chaos.avg_superstep_seconds(),
        },
    ]
}

fn run_all_systems_sssp(
    graph: &graphh_graph::Graph,
    partitioned: &PartitionedGraph,
    servers: u32,
) -> Vec<SystemRun> {
    let cluster = ClusterConfig::paper_testbed(servers);
    let source = best_source(graph);
    let graphh = run_graphh(partitioned, &Sssp::new(source), servers);
    let pregel =
        PregelEngine::new(PregelConfig::pregel_plus(cluster)).run(graph, &SsspMsg::new(source));
    let powergraph =
        GasEngine::new(GasConfig::powergraph(cluster)).run(graph, &SsspMsg::new(source));
    let powerlyra = GasEngine::new(GasConfig::powerlyra(cluster)).run(graph, &SsspMsg::new(source));
    let graphd = PregelEngine::new(PregelConfig::graphd(cluster)).run(graph, &SsspMsg::new(source));
    let chaos = ChaosEngine::new(ChaosConfig::new(cluster)).run(graph, &SsspMsg::new(source));
    vec![
        SystemRun {
            name: "GraphH",
            avg_seconds: graphh.avg_superstep_seconds(),
        },
        SystemRun {
            name: "Pregel+",
            avg_seconds: pregel.avg_superstep_seconds(),
        },
        SystemRun {
            name: "PowerGraph",
            avg_seconds: powergraph.avg_superstep_seconds(),
        },
        SystemRun {
            name: "PowerLyra",
            avg_seconds: powerlyra.avg_superstep_seconds(),
        },
        SystemRun {
            name: "GraphD",
            avg_seconds: graphd.avg_superstep_seconds(),
        },
        SystemRun {
            name: "Chaos",
            avg_seconds: chaos.avg_superstep_seconds(),
        },
    ]
}

/// Figure 1b: per-superstep PageRank time on UK-2007 with 9 servers, per system
/// (simulated seconds on the stand-in graph).
pub fn fig1b_execution_time() -> String {
    let g = experiment_graph(Dataset::Uk2007);
    let p = partition_for_experiments(&g, "uk-2007");
    let runs = run_all_systems_pagerank(&g, &p, 9, PAGERANK_SUPERSTEPS);
    let mut out = String::from(
        "# Figure 1b: avg PageRank superstep time, UK-2007 stand-in, 9 servers\nsystem\tavg superstep seconds (simulated)\n",
    );
    for r in runs {
        writeln!(out, "{}\t{:.4}", r.name, r.avg_seconds).unwrap();
    }
    out
}

/// Table III: per-superstep memory / network / disk for PageRank, per system, at
/// paper scale for the chosen dataset.
pub fn table3_cost_comparison(dataset: Dataset) -> String {
    let sheet = CostSheet::new(&dataset.paper_stats(), ClusterConfig::paper_testbed(9));
    let mut out = format!(
        "# Table III: PageRank cost model on {} (paper scale, 9 servers)\nsystem\tmemory (total)\tnetwork/superstep\tdisk read/superstep\tdisk write/superstep\n",
        dataset.name()
    );
    for sys in SystemKind::ALL {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            sys.name(),
            human_bytes(sheet.total_memory_bytes(sys)),
            human_bytes(sheet.network_bytes_per_superstep(sys)),
            human_bytes(sheet.disk_read_bytes_per_superstep(sys, 0.3)),
            human_bytes(sheet.disk_write_bytes_per_superstep(sys)),
        )
        .unwrap();
    }
    out
}

/// Table IV: input data size per system format, per dataset (paper scale estimates
/// plus the measured tile footprint of the stand-in).
pub fn table4_input_sizes() -> String {
    let mut out = String::from(
        "# Table IV: input data size per system\ndataset\tedge list (CSV)\tPregel+/GraphD\tGiraph\tChaos\tGraphH\tGraphH/CSV ratio\n",
    );
    for d in Dataset::ALL {
        let sizes = InputSizes::from_stats(&d.paper_stats());
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.2}",
            d.name(),
            human_bytes(sizes.edge_list_csv),
            human_bytes(sizes.pregel_like),
            human_bytes(sizes.giraph),
            human_bytes(sizes.chaos),
            human_bytes(sizes.graphh),
            sizes.graphh_to_csv_ratio()
        )
        .unwrap();
    }
    out
}

/// Figure 6a: expected per-server memory of the All-in-All vs On-Demand replication
/// policies as the cluster grows (paper scale, PageRank sizes).
pub fn fig6a_replication_policies() -> String {
    let mut out = String::from(
        "# Figure 6a: expected per-server vertex memory, AA vs OD policy\ndataset\tservers\tAA\tOD\n",
    );
    for d in Dataset::ALL {
        let model = MemoryModel::new(&d.paper_stats(), VertexSizes::pagerank());
        for servers in [1u32, 8, 16, 24, 32, 48, 64] {
            writeln!(
                out,
                "{}\t{}\t{}\t{}",
                d.name(),
                servers,
                human_bytes(model.aa_vertex_bytes()),
                human_bytes(model.od_vertex_bytes(servers)),
            )
            .unwrap();
        }
    }
    out
}

/// Figure 6b: measured GraphH memory per server (stand-in scale, no edge cache) and
/// the corresponding paper-scale model, for PageRank and SSSP on all datasets.
pub fn fig6b_memory_usage() -> String {
    let mut out = String::from(
        "# Figure 6b: GraphH per-server memory (9 servers, cache disabled)\ndataset\tprogram\tmeasured peak (stand-in)\tmodelled (paper scale)\n",
    );
    for d in Dataset::ALL {
        let g = experiment_graph(d);
        let p = partition_for_experiments(&g, d.name());
        for (label, sizes, program) in [
            (
                "PageRank",
                VertexSizes::pagerank(),
                Box::new(PageRank::new(3)) as Box<dyn GabProgram>,
            ),
            (
                "SSSP",
                VertexSizes::sssp(),
                Box::new(Sssp::new(best_source(&g))) as Box<dyn GabProgram>,
            ),
        ] {
            let engine = GraphHEngine::new(
                GraphHConfig::paper_default(ClusterConfig::paper_testbed(9)).without_cache(),
            );
            let result = engine.run(&p, program.as_ref()).expect("run");
            let measured = result
                .per_server_peak_memory
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let model = MemoryModel::new(&d.paper_stats(), sizes);
            let paper_scale = model.aa_vertex_bytes() + 25_000_000 * 4 * 12;
            writeln!(
                out,
                "{}\t{}\t{}\t{}",
                d.name(),
                label,
                human_bytes(measured),
                human_bytes(paper_scale),
            )
            .unwrap();
        }
    }
    out
}

/// Table V: compression ratio and throughput of every codec on each dataset's tiles.
pub fn table5_compression() -> String {
    let mut out = String::from(
        "# Table V: compression ratio / throughput on serialized tiles\ndataset\tcodec\tratio\tcompress MB/s\tdecompress MB/s\ttile bytes\n",
    );
    for d in Dataset::ALL {
        let g = experiment_graph(d);
        let p = partition_for_experiments(&g, d.name());
        // Concatenate a sample of tiles (up to ~4 MB) as the measurement payload.
        let mut payload = Vec::new();
        for tile in &p.tiles {
            payload.extend_from_slice(&tile.to_bytes());
            if payload.len() > 4 << 20 {
                break;
            }
        }
        for m in measure_all(&payload) {
            writeln!(
                out,
                "{}\t{}\t{:.2}\t{:.0}\t{:.0}\t{}",
                d.name(),
                m.codec.name(),
                m.ratio,
                m.compress_throughput / 1e6,
                m.decompress_throughput / 1e6,
                payload.len(),
            )
            .unwrap();
        }
    }
    out
}

/// Figure 7: execution time and cache hit ratio per cache mode (1–4), with the edge
/// cache capacity constrained so the mode actually matters, on the EU-2015 stand-in
/// with 3 and 9 servers.
pub fn fig7_cache_modes() -> String {
    let g = experiment_graph(Dataset::Eu2015);
    let p = partition_for_experiments(&g, "eu-2015");
    let total_tile_bytes = p.total_tile_bytes();
    let mut out = String::from(
        "# Figure 7: PageRank per-superstep time and cache hit ratio vs cache mode (EU-2015 stand-in)\nservers\tcache mode\tcodec\tavg superstep seconds\tcache hit ratio\n",
    );
    for servers in [3u32, 9] {
        // Give each server enough cache for ~40% of its raw tiles: raw cannot hold
        // everything, compressed modes can.
        let capacity = (total_tile_bytes / u64::from(servers)) * 2 / 5;
        for mode in 1u8..=4 {
            let codec = Codec::from_cache_mode(mode).unwrap();
            let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(servers));
            cfg.cache_mode = CacheMode::Fixed(codec);
            cfg.cache_capacity = Some(capacity);
            let result = GraphHEngine::new(cfg)
                .run(&p, &PageRank::new(6))
                .expect("run");
            let hits: u64 = result
                .metrics
                .supersteps
                .iter()
                .skip(1)
                .flat_map(|r| r.servers.iter())
                .map(|s| s.cache_hits)
                .sum();
            let misses: u64 = result
                .metrics
                .supersteps
                .iter()
                .skip(1)
                .flat_map(|r| r.servers.iter())
                .map(|s| s.cache_misses)
                .sum();
            let hit_ratio = if hits + misses == 0 {
                1.0
            } else {
                hits as f64 / (hits + misses) as f64
            };
            writeln!(
                out,
                "{}\tmode-{}\t{}\t{:.4}\t{:.3}",
                servers,
                mode,
                codec.name(),
                result.avg_superstep_seconds(),
                hit_ratio,
            )
            .unwrap();
        }
    }
    out
}

/// Figure 8a/b/c/d: update ratio, dense-vs-sparse traffic, hybrid-mode traffic under
/// different compressors, and the resulting execution time, for PageRank with a
/// convergence tolerance on the UK-2007 stand-in (9 servers).
pub fn fig8_communication(supersteps: u32) -> String {
    let g = experiment_graph(Dataset::Uk2007);
    let p = partition_for_experiments(&g, "uk-2007");
    let n = g.num_vertices() as f64;
    // A tolerance makes the updated-vertex ratio decay over time like Figure 8a.
    let program = PageRank::with_tolerance(supersteps, 1e-3 / n);

    let mut out = String::from(
        "# Figure 8a: vertex updated ratio per superstep (PageRank, UK-2007 stand-in)\n",
    );
    let baseline = run_graphh(&p, &program, 9);
    for (i, ratio) in baseline.updated_ratio_per_superstep.iter().enumerate() {
        writeln!(out, "superstep {i}\t{ratio:.4}").unwrap();
    }

    // 8b: dense vs sparse traffic; 8c/8d: hybrid mode with each compressor.
    out.push_str("\n# Figure 8b/8c/8d: total network traffic and avg superstep time per communication mode\nmode\tcompressor\ttotal network bytes\tavg superstep seconds\n");
    let modes: [(&str, CommunicationMode); 3] = [
        ("dense", CommunicationMode::Dense),
        ("sparse", CommunicationMode::Sparse),
        ("hybrid", CommunicationMode::default()),
    ];
    let compressors: [(&str, Option<Codec>); 4] = [
        ("raw", None),
        ("snappy", Some(Codec::Snappy)),
        ("zlib-1", Some(Codec::Zlib1)),
        ("zlib-3", Some(Codec::Zlib3)),
    ];
    for (mode_name, mode) in modes {
        for (comp_name, comp) in compressors {
            // Dense and sparse are only reported uncompressed (8b); hybrid is swept
            // over all compressors (8c/8d), matching the paper's panels.
            if mode_name != "hybrid" && comp_name != "raw" {
                continue;
            }
            let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(9));
            cfg.communication = mode;
            cfg.message_compressor = comp;
            let result = GraphHEngine::new(cfg).run(&p, &program).expect("run");
            writeln!(
                out,
                "{}\t{}\t{}\t{:.4}",
                mode_name,
                comp_name,
                result.metrics.total_network_bytes(),
                result.avg_superstep_seconds(),
            )
            .unwrap();
        }
    }
    out
}

/// Figure 9: average PageRank superstep time for every dataset × cluster size ×
/// system combination.
pub fn fig9_pagerank(supersteps: u32) -> String {
    let mut out = String::from(
        "# Figure 9: avg PageRank superstep time (simulated seconds)\ndataset\tservers\tGraphH\tPregel+\tPowerGraph\tPowerLyra\tGraphD\tChaos\n",
    );
    for d in Dataset::ALL {
        let g = experiment_graph(d);
        let p = partition_for_experiments(&g, d.name());
        for servers in [1u32, 3, 6, 9] {
            let runs = run_all_systems_pagerank(&g, &p, servers, supersteps);
            writeln!(
                out,
                "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                d.name(),
                servers,
                runs[0].avg_seconds,
                runs[1].avg_seconds,
                runs[2].avg_seconds,
                runs[3].avg_seconds,
                runs[4].avg_seconds,
                runs[5].avg_seconds,
            )
            .unwrap();
        }
    }
    out
}

/// Figure 10: average SSSP superstep time for every dataset × cluster size × system.
pub fn fig10_sssp() -> String {
    let mut out = String::from(
        "# Figure 10: avg SSSP superstep time (simulated seconds)\ndataset\tservers\tGraphH\tPregel+\tPowerGraph\tPowerLyra\tGraphD\tChaos\n",
    );
    for d in Dataset::ALL {
        let g = experiment_graph(d);
        let p = partition_for_experiments(&g, d.name());
        for servers in [1u32, 3, 6, 9] {
            let runs = run_all_systems_sssp(&g, &p, servers);
            writeln!(
                out,
                "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                d.name(),
                servers,
                runs[0].avg_seconds,
                runs[1].avg_seconds,
                runs[2].avg_seconds,
                runs[3].avg_seconds,
                runs[4].avg_seconds,
                runs[5].avg_seconds,
            )
            .unwrap();
        }
    }
    out
}

/// Ablations beyond the paper's figures: Bloom-filter tile skipping, All-in-All vs
/// On-Demand policy crossover, and the tile-size sweep of §III-B.3.
pub fn ablations() -> String {
    let mut out = String::from("# Ablations\n");

    // Bloom filter on/off for SSSP (frontier algorithm → most tiles skippable).
    let g = experiment_graph(Dataset::Twitter2010);
    let p = partition_for_experiments(&g, "twitter-2010");
    let source = best_source(&g);
    let with = run_graphh(&p, &Sssp::new(source), 9);
    let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(9));
    cfg.use_bloom_filter = false;
    let without = GraphHEngine::new(cfg)
        .run(&p, &Sssp::new(source))
        .expect("run");
    writeln!(
        out,
        "bloom-filter (SSSP, Twitter stand-in, 9 servers): with={:.4}s/superstep without={:.4}s/superstep",
        with.avg_superstep_seconds(),
        without.avg_superstep_seconds()
    )
    .unwrap();

    // AA vs OD crossover for each dataset (paper scale).
    for d in Dataset::ALL {
        let model = MemoryModel::new(&d.paper_stats(), VertexSizes::pagerank());
        let crossover = model.od_crossover(128);
        writeln!(
            out,
            "replication crossover ({}): OD beats AA from {} servers",
            d.name(),
            crossover.map_or("never (<=128)".to_string(), |c| c.to_string())
        )
        .unwrap();
        let _ = ReplicationPolicy::AllInAll; // referenced for doc purposes
    }

    // Tile size sweep: partition with different average tile sizes and report balance.
    let g = experiment_graph(Dataset::Uk2007);
    for tiles in [4u32, 16, 64, 256] {
        let p = graphh_partition::Spe::partition(
            &g,
            &graphh_partition::SpeConfig::with_tile_count("uk-2007", &g, tiles),
        )
        .expect("partition");
        writeln!(
            out,
            "tile sweep (UK-2007 stand-in): requested {} tiles -> {} tiles, max tile {} edges, imbalance {:.2}",
            tiles,
            p.num_tiles(),
            p.max_tile_edges(),
            p.splitter.imbalance(&p.in_degrees)
        )
        .unwrap();
    }
    // Executor ablation: sequential reference loop vs the threaded runtime on
    // the same workload (results are bit-identical; only wall-clock differs).
    let g = experiment_graph(Dataset::Twitter2010);
    let p = partition_for_experiments(&g, "twitter-2010");
    for servers in [1u32, 4] {
        let seq = crate::run_graphh_with(
            &p,
            &graphh_core::PageRank::new(5),
            servers,
            std::sync::Arc::new(graphh_core::SequentialExecutor::new()),
        );
        let thr = crate::run_graphh_with(
            &p,
            &graphh_core::PageRank::new(5),
            servers,
            std::sync::Arc::new(graphh_runtime::ThreadedExecutor::new()),
        );
        writeln!(
            out,
            "executor (PageRank, Twitter stand-in, {servers} servers): sequential={:.4}s threaded={:.4}s wall-clock speedup={:.2}x",
            seq.wall_clock_seconds,
            thr.wall_clock_seconds,
            seq.wall_clock_seconds / thr.wall_clock_seconds.max(1e-12)
        )
        .unwrap();
    }
    // Intra-server parallelism sweep: the paper's T compute threads inside
    // each server, against the T=1 reference on the same 2-server cluster.
    let base = crate::run_graphh_config(
        &p,
        &graphh_core::PageRank::new(5),
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)).with_threads_per_server(1),
        std::sync::Arc::new(graphh_runtime::ThreadedExecutor::new()),
    );
    for threads in [2u32, 4, 8] {
        let run = crate::run_graphh_config(
            &p,
            &graphh_core::PageRank::new(5),
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(2))
                .with_threads_per_server(threads),
            std::sync::Arc::new(graphh_runtime::ThreadedExecutor::new()),
        );
        let identical = base
            .values
            .iter()
            .zip(&run.values)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        writeln!(
            out,
            "threads-per-server (PageRank, Twitter stand-in, 2 servers): T={threads} wall-clock={:.4}s speedup-vs-T1={:.2}x bit-identical={identical}",
            run.wall_clock_seconds,
            base.wall_clock_seconds / run.wall_clock_seconds.max(1e-12)
        )
        .unwrap();
    }
    let _ = EXPERIMENT_SEED;
    let _ = experiment_spec(Dataset::Twitter2010);
    out
}

/// Runtime shoot-out: sequential vs threaded executor wall-clock on RMAT
/// scale-10 PageRank, per cluster size. Results are bit-identical by
/// construction (enforced here, differentially tested in `tests/`); the point
/// of this table is the real-time speedup trajectory, which [`runtime_json`]
/// records machine-readably as `BENCH_runtime.json`.
///
/// Measures once; callers wanting both the table and the JSON should call
/// [`runtime_rows`] / [`pool_spawn_microbench`] once and render with
/// [`runtime_report`] / [`runtime_json`] (the report binary does) so both
/// outputs describe the same measurement.
pub fn runtime_executors() -> String {
    runtime_report(
        &runtime_rows(),
        &kernel_sweep(),
        &pool_spawn_microbench(),
        &plane_loopback_microbench(),
        &codec_microbench(),
        &phase_breakdown(),
    )
}

/// The host's core count as `available_parallelism` reports it (0 when the
/// host will not say). Recorded next to every runtime measurement: a ≤1×
/// speedup is self-explanatory when the sweep shows `servers ×
/// threads_per_server` exceeding this number.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(0)
}

/// Render the executor-comparison table from measured rows.
pub fn runtime_report(
    rows: &[RuntimeRow],
    sweep: &[KernelSweepRow],
    pool: &PoolBench,
    plane: &PlaneBench,
    codec: &CodecBench,
    phase: &PhaseBreakdown,
) -> String {
    let mut out = format!(
        "# Runtime: sequential vs threaded executor (RMAT scale-10, PageRank)\n\
         (wall_s columns are measured host wall-clock; simulated_s is the \
         cost model's predicted cluster time, identical for both executors)\n\
         host cores (available_parallelism): {}\n\
         servers\tthreads/server\tsequential_wall_s\tthreaded_wall_s\tsimulated_s\tspeedup\tidentical\n",
        host_cores()
    );
    for row in rows {
        writeln!(
            out,
            "{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.2}x\t{}",
            row.servers,
            row.threads_per_server,
            row.sequential_wall_seconds,
            row.threaded_wall_seconds,
            row.simulated_seconds,
            row.speedup(),
            row.identical
        )
        .unwrap();
    }
    out.push_str(
        "(speedup needs real cores: on a single-core host the fork-join and \
         barrier overhead make it <=1x; the threaded executor runs p server \
         threads x T tile threads)\n",
    );
    out.push_str(
        "# Kernel sweep: every registry program x direction mode (3 servers; \
         identical = bit-equal to the pull-forced sequential reference)\n\
         program\tmode\tsequential_wall_s\tthreaded_wall_s\tsupersteps\tidentical\n",
    );
    for row in sweep {
        writeln!(
            out,
            "{}\t{}\t{:.6}\t{:.6}\t{}\t{}",
            row.program,
            row.mode,
            row.sequential_wall_seconds,
            row.threaded_wall_seconds,
            row.supersteps_run,
            row.identical
        )
        .unwrap();
    }
    writeln!(
        out,
        "pool microbench ({} phases x {} items, {} threads): \
         spawn-per-phase={:.6}s persistent-pool={:.6}s speedup={:.2}x",
        pool.phases,
        pool.items,
        pool.threads,
        pool.spawning_seconds,
        pool.persistent_seconds,
        pool.speedup()
    )
    .unwrap();
    writeln!(
        out,
        "plane microbench (2 endpoints, {} supersteps x {} x {} B broadcasts): \
         socket={:.6}s poll={:.6}s socket/poll={:.2}x (poll coalesces each \
         superstep's frames into one batched, vectored write per peer)",
        plane.supersteps,
        plane.messages_per_superstep,
        plane.payload_bytes,
        plane.socket_seconds,
        plane.poll_seconds,
        plane.ratio()
    )
    .unwrap();
    for row in &codec.rows {
        writeln!(
            out,
            "codec microbench ({}, {} updates / {} range, {} B wire): \
             encode={:.0} MB/s encode_into={:.0} MB/s ({:.2}x) decode={:.0} MB/s \
             decode_each={:.0} MB/s ({:.2}x)",
            row.encoding,
            row.updates,
            codec.range,
            row.wire_bytes,
            row.encode_mb_s,
            row.encode_into_mb_s,
            row.encode_into_mb_s / row.encode_mb_s.max(1e-12),
            row.decode_mb_s,
            row.decode_each_mb_s,
            row.decode_each_mb_s / row.decode_mb_s.max(1e-12),
        )
        .unwrap();
    }
    for row in &codec.compressed {
        writeln!(
            out,
            "compressed codec microbench ({}, {} B plain -> {} B wire): \
             encode={:.0} MB/s encode_into+scratch={:.0} MB/s ({:.2}x) identical={}",
            row.compressor,
            row.plain_bytes,
            row.wire_bytes,
            row.encode_mb_s,
            row.encode_into_mb_s,
            row.speedup(),
            row.identical,
        )
        .unwrap();
    }
    writeln!(
        out,
        "phase breakdown (one traced threaded run, {} servers x {} \
         threads/server, {} supersteps; wall-clock summed across all lanes):",
        phase.servers, phase.threads_per_server, phase.supersteps
    )
    .unwrap();
    for t in &phase.phases {
        writeln!(
            out,
            "  {}/{}\t{:.6}s\t{} spans",
            t.cat, t.name, t.total_seconds, t.spans
        )
        .unwrap();
    }
    out
}

/// Measured throughput of the broadcast message codec: the allocating
/// `encode`/`decode` path versus the pooled-buffer `encode_into`/`decode_each`
/// hot path this repo's superstep loop actually runs, on a dense message
/// (most of the range updated) and a sparse-frontier one (few updates, so the
/// dense decode's zero-byte bitmap skip and the sparse pair walk both show).
pub struct CodecBench {
    /// Vertices in each message's target range.
    pub range: u32,
    /// Measured per-encoding rows.
    pub rows: Vec<CodecBenchRow>,
    /// Measured per-compressor rows over a small dense message (the repo's
    /// real per-tile broadcast regime): the allocating `MessageCodec::encode`
    /// versus `encode_into_with` reusing a persistent
    /// [`CompressorScratch`](graphh_compress::CompressorScratch) across calls.
    pub compressed: Vec<CompressedCodecBenchRow>,
}

/// One encoding's measured throughputs (MB/s of wire bytes, best of 3).
pub struct CodecBenchRow {
    /// "dense" or "sparse".
    pub encoding: &'static str,
    /// Updates carried per message.
    pub updates: usize,
    /// Encoded wire size in bytes.
    pub wire_bytes: u64,
    /// Allocating `BroadcastMessage::encode` path.
    pub encode_mb_s: f64,
    /// Buffer-reusing `BroadcastMessage::encode_into` path.
    pub encode_into_mb_s: f64,
    /// Allocating `BroadcastMessage::decode` path.
    pub decode_mb_s: f64,
    /// Streaming `BroadcastMessage::decode_each` visitor path.
    pub decode_each_mb_s: f64,
}

/// One compressor's measured encode throughputs (MB/s of *plain* payload
/// bytes pushed through encode + compress, best of 3 — both paths move the
/// same plain bytes, so the column ratio is the scratch-reuse speedup).
/// `Raw` is not a row: `None` and `Some(Raw)` both take the uncompressed
/// path, which [`CodecBenchRow`] already measures. The LZSS codecs
/// (snappy, zlib-*) are the ones with per-call match-finder tables to
/// amortize; `varint-delta` never had per-call compressor state, so its
/// two paths are expected near parity — its row exists for the
/// byte-identity gate, not the speedup.
pub struct CompressedCodecBenchRow {
    /// Compressor name (`snappy`, `zlib-1`, `zlib-3`, `varint-delta`).
    pub compressor: &'static str,
    /// Plain (pre-compression) encoded payload size in bytes.
    pub plain_bytes: u64,
    /// Compressed wire size in bytes.
    pub wire_bytes: u64,
    /// Allocating `MessageCodec::encode` path (fresh buffers + fresh
    /// compressor state every call).
    pub encode_mb_s: f64,
    /// `MessageCodec::encode_into_with` reusing buffers and one persistent
    /// compressor scratch across every call.
    pub encode_into_mb_s: f64,
    /// Both paths produced byte-identical wire bytes.
    pub identical: bool,
}

impl CompressedCodecBenchRow {
    /// Scratch-reusing encode throughput over the allocating baseline.
    pub fn speedup(&self) -> f64 {
        self.encode_into_mb_s / self.encode_mb_s.max(1e-12)
    }
}

/// Measure [`CodecBench`]: 64 Ki-vertex range; dense = 90% updated, sparse =
/// 1% updated (the dense row is also decoded through the bitmap's zero-byte
/// skip). Throughput counts wire bytes moved per second, best of 3.
pub fn codec_microbench() -> CodecBench {
    codec_microbench_sized(64 * 1024, 100_000_000)
}

/// [`codec_microbench`] with an explicit range and per-measurement byte
/// target, so tests can validate the measurement plumbing on a workload that
/// finishes in milliseconds even unoptimized.
pub fn codec_microbench_sized(range: u32, target_bytes: u64) -> CodecBench {
    use graphh_cluster::{BroadcastEncoding, BroadcastMessage, MessageCodec, ServerMetrics};
    use graphh_compress::CompressorScratch;
    use std::time::Instant;

    let best_of_3 = |run: &mut dyn FnMut() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        let mut bytes = 0u64;
        for _ in 0..3 {
            let started = Instant::now();
            bytes = run();
            best = best.min(started.elapsed().as_secs_f64());
        }
        bytes as f64 / best.max(1e-12) / 1e6
    };

    let mut rows = Vec::new();
    for (encoding, name, step) in [
        (BroadcastEncoding::Dense, "dense", 10u32), // 90% updated
        (BroadcastEncoding::Sparse, "sparse", 100u32), // 1% updated
    ] {
        let updates: Vec<(u32, f64)> = match encoding {
            // Dense: everything except every `step`-th vertex updated.
            BroadcastEncoding::Dense => (0..range)
                .filter(|v| !v.is_multiple_of(step))
                .map(|v| (v, f64::from(v) * 0.5))
                .collect(),
            // Sparse: only every `step`-th vertex updated.
            BroadcastEncoding::Sparse => (0..range)
                .step_by(step as usize)
                .map(|v| (v, f64::from(v) * 0.5))
                .collect(),
        };
        let message = BroadcastMessage::new(0, range, updates);
        let wire_bytes = message.encoded_size(encoding);
        // Iteration counts sized so each measurement moves ~`target_bytes`.
        let iters = (target_bytes / wire_bytes).clamp(2, 4096);

        let encode_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            for _ in 0..iters {
                total += std::hint::black_box(message.encode(encoding)).len() as u64;
            }
            total
        });
        let mut out = Vec::new();
        let encode_into_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            for _ in 0..iters {
                message.encode_into(encoding, &mut out);
                total += std::hint::black_box(&out).len() as u64;
            }
            total
        });
        let wire = message.encode(encoding);
        let decode_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            for _ in 0..iters {
                let decoded = BroadcastMessage::decode(&wire).expect("valid wire");
                total += wire.len() as u64;
                std::hint::black_box(decoded.updates.len());
            }
            total
        });
        let decode_each_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            let mut sum = 0u64;
            for _ in 0..iters {
                BroadcastMessage::decode_each(&wire, |v, _| sum += u64::from(v))
                    .expect("valid wire");
                total += wire.len() as u64;
            }
            std::hint::black_box(sum);
            total
        });
        rows.push(CodecBenchRow {
            encoding: name,
            updates: message.updates.len(),
            wire_bytes,
            encode_mb_s,
            encode_into_mb_s,
            decode_mb_s,
            decode_each_mb_s,
        });
    }

    // The compressed encode paths: allocating `encode` — fresh buffers and
    // fresh compressor state per call, what the hot path did before lanes
    // parked a scratch — versus `encode_into_with` carrying one persistent
    // scratch across every call, what the worker's encode lanes run now.
    // Measured on a *small* dense message (128-vertex range, ~1 KB plain):
    // per-tile broadcast ranges in this repo's real workloads are tens to
    // hundreds of vertices, and small messages are exactly where per-call
    // match-finder table setup dominates the compression itself.
    const COMPRESSED_RANGE: u32 = 128;
    let dense_updates: Vec<(u32, f64)> = (0..COMPRESSED_RANGE)
        .filter(|v| !v.is_multiple_of(10))
        .map(|v| (v, f64::from(v) * 0.5))
        .collect();
    let message = BroadcastMessage::new(0, COMPRESSED_RANGE, dense_updates);
    let plain_bytes = message.encoded_size(BroadcastEncoding::Dense);
    let iters = (target_bytes / plain_bytes).clamp(2, 16384);
    let mut compressed = Vec::new();
    for codec in [
        Codec::Snappy,
        Codec::Zlib1,
        Codec::Zlib3,
        Codec::VarintDelta,
    ] {
        let mc = MessageCodec::new(CommunicationMode::default(), Some(codec));
        let encode_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            for _ in 0..iters {
                let (wire, _) = mc.encode(&message, &mut ServerMetrics::default());
                std::hint::black_box(wire.len());
                total += plain_bytes;
            }
            total
        });
        let mut scratch = Vec::new();
        let mut wire = Vec::new();
        let mut comp = CompressorScratch::new();
        let encode_into_mb_s = best_of_3(&mut || {
            let mut total = 0u64;
            for _ in 0..iters {
                mc.encode_into_with(
                    &message,
                    &mut ServerMetrics::default(),
                    &mut scratch,
                    &mut wire,
                    &mut comp,
                );
                std::hint::black_box(wire.len());
                total += plain_bytes;
            }
            total
        });
        let (alloc_wire, _) = mc.encode(&message, &mut ServerMetrics::default());
        mc.encode_into_with(
            &message,
            &mut ServerMetrics::default(),
            &mut scratch,
            &mut wire,
            &mut comp,
        );
        compressed.push(CompressedCodecBenchRow {
            compressor: codec.name(),
            plain_bytes,
            wire_bytes: wire.len() as u64,
            encode_mb_s,
            encode_into_mb_s,
            identical: alloc_wire == wire,
        });
    }
    CodecBench {
        range,
        rows,
        compressed,
    }
}

/// Measured cost of many *short* fork-join phases (the shape of a superstep
/// tile phase on a small graph): freshly spawned scoped threads per phase vs
/// the persistent [`graphh_pool::WorkerPool`] the engine now uses.
pub struct PoolBench {
    /// Fork-join phases per measurement.
    pub phases: usize,
    /// Items per phase (tiles of a short superstep).
    pub items: usize,
    /// Cooperating threads.
    pub threads: usize,
    /// Best-of-3 seconds for spawn-per-phase `fork_join_ordered`.
    pub spawning_seconds: f64,
    /// Best-of-3 seconds for the persistent pool (created once, outside the
    /// measured loop — exactly how `ServerState` holds it).
    pub persistent_seconds: f64,
}

impl PoolBench {
    /// How much faster the persistent pool runs the same phases.
    pub fn speedup(&self) -> f64 {
        self.spawning_seconds / self.persistent_seconds.max(1e-12)
    }
}

/// Measure [`PoolBench`]: 256 phases of 32 tiny items each, best of 3.
pub fn pool_spawn_microbench() -> PoolBench {
    use std::time::Instant;
    const PHASES: usize = 256;
    const ITEMS: usize = 32;

    // A few hundred nanoseconds of mixing per item — the regime where spawn
    // overhead dominates honest work, i.e. short supersteps.
    let work = |i: usize| {
        let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for _ in 0..64 {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        acc
    };
    let best_of_3 = |mut run: Box<dyn FnMut()>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            run();
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };

    let pool = graphh_pool::WorkerPool::with_host_parallelism();
    let threads = pool.threads();
    let spawning_seconds = best_of_3(Box::new(move || {
        for _ in 0..PHASES {
            std::hint::black_box(graphh_pool::fork_join_ordered(threads, ITEMS, work));
        }
    }));
    let persistent_seconds = best_of_3(Box::new(move || {
        for _ in 0..PHASES {
            std::hint::black_box(pool.fork_join_ordered(ITEMS, work));
        }
    }));
    PoolBench {
        phases: PHASES,
        items: ITEMS,
        threads,
        spawning_seconds,
        persistent_seconds,
    }
}

/// Measured loopback wall-clock of the two TCP broadcast planes on the same
/// exchange — the transport axis of the runtime record. `socket` burns one
/// reader thread per peer; `poll` drives every peer from a single event-loop
/// thread (see `docs/WIRE.md` §5 and the `graphh-node --plane` flag). On a
/// 2-endpoint loopback the two are expected to be close; the poll plane's
/// advantage is thread *footprint* at larger cluster sizes, not 2-node
/// latency.
pub struct PlaneBench {
    /// Supersteps per measurement.
    pub supersteps: u32,
    /// Broadcasts per endpoint per superstep.
    pub messages_per_superstep: usize,
    /// Bytes per broadcast payload.
    pub payload_bytes: usize,
    /// Best-of-3 seconds over [`graphh_runtime::SocketPlane`].
    pub socket_seconds: f64,
    /// Best-of-3 seconds over [`graphh_runtime::PollPlane`].
    pub poll_seconds: f64,
}

impl PlaneBench {
    /// Socket-plane time over poll-plane time (>1 means poll was faster).
    pub fn ratio(&self) -> f64 {
        self.socket_seconds / self.poll_seconds.max(1e-12)
    }
}

/// Measure [`PlaneBench`]: two endpoints over loopback, 32 supersteps of
/// 8 × 4 KiB broadcasts each, best of 3 per plane.
pub fn plane_loopback_microbench() -> PlaneBench {
    use graphh_runtime::{BoundTcpPlane, BroadcastPlane, TcpPlaneKind};
    use std::net::SocketAddr;
    use std::time::Instant;

    const SUPERSTEPS: u32 = 32;
    const MESSAGES: usize = 8;
    const PAYLOAD: usize = 4096;

    fn exchange(mut plane: Box<dyn BroadcastPlane>, payload: &[u8]) {
        for s in 0..SUPERSTEPS {
            for _ in 0..MESSAGES {
                plane.broadcast(s, payload).expect("broadcast");
            }
            plane.end_superstep(s).expect("end superstep");
            let got = plane.collect(s).expect("collect");
            assert_eq!(got.len(), MESSAGES);
        }
    }

    // Measures one full 2-endpoint run: bind, establish, exchange, teardown
    // (teardown is part of the cost story — the socket plane joins 2 reader
    // threads, the poll plane 1 event loop, per endpoint).
    fn run_once(kind: TcpPlaneKind, payload: &[u8]) -> f64 {
        let started = Instant::now();
        std::thread::scope(|scope| {
            let bound: Vec<BoundTcpPlane> = (0..2)
                .map(|sid| BoundTcpPlane::bind(kind, sid, 2, "127.0.0.1:0").expect("bind"))
                .collect();
            let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
            for b in bound {
                let addrs = addrs.clone();
                scope.spawn(move || exchange(b.establish(&addrs).expect("establish"), payload));
            }
        });
        started.elapsed().as_secs_f64()
    }

    let payload = vec![0x5au8; PAYLOAD];
    let best_of_3 = |kind: TcpPlaneKind| {
        (0..3)
            .map(|_| run_once(kind, &payload))
            .fold(f64::INFINITY, f64::min)
    };
    PlaneBench {
        supersteps: SUPERSTEPS,
        messages_per_superstep: MESSAGES,
        payload_bytes: PAYLOAD,
        socket_seconds: best_of_3(TcpPlaneKind::Socket),
        poll_seconds: best_of_3(TcpPlaneKind::Poll),
    }
}

/// One measured executor-comparison configuration.
///
/// Wall-clock and simulated time are distinct quantities and are labelled
/// distinctly everywhere they are reported: `*_wall_seconds` is measured host
/// time (hardware- and load-dependent), while [`simulated_seconds`] is the
/// paper cost model's predicted cluster time, which is a deterministic
/// function of the workload and identical for both executors by construction.
///
/// [`simulated_seconds`]: RuntimeRow::simulated_seconds
pub struct RuntimeRow {
    /// Cluster size (the paper's `p` servers).
    pub servers: u32,
    /// Tile-phase compute threads per server (the paper's `T`).
    pub threads_per_server: u32,
    /// Best-of-3 measured wall-clock seconds, sequential reference executor.
    pub sequential_wall_seconds: f64,
    /// Best-of-3 measured wall-clock seconds, threaded runtime.
    pub threaded_wall_seconds: f64,
    /// Cost-model simulated cluster seconds for the whole run (executor-
    /// independent; taken from the sequential run and asserted equal to the
    /// threaded run's).
    pub simulated_seconds: f64,
    /// Whether the two executors produced bit-identical values.
    pub identical: bool,
}

impl RuntimeRow {
    /// Wall-clock speedup of threaded over sequential.
    pub fn speedup(&self) -> f64 {
        self.sequential_wall_seconds / self.threaded_wall_seconds.max(1e-12)
    }
}

/// Measure the executor comparison: RMAT scale-10 (edge factor 16) PageRank,
/// 20 supersteps, best-of-3 per executor per (cluster size × threads-per-
/// server) configuration — the second axis is the paper's `T` intra-server
/// compute threads.
pub fn runtime_rows() -> Vec<RuntimeRow> {
    use graphh_core::SequentialExecutor;
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_runtime::ThreadedExecutor;
    use std::sync::Arc;

    let g = RmatGenerator::new(10, 16).generate(EXPERIMENT_SEED);
    let p = graphh_partition::Spe::partition(
        &g,
        &graphh_partition::SpeConfig::with_tile_count("rmat-10", &g, 16),
    )
    .expect("partition");
    let program = graphh_core::PageRank::new(20);

    let best_of_3 = |servers: u32, threads: u32, executor: Arc<dyn graphh_core::Executor>| {
        let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(servers))
            .with_threads_per_server(threads);
        let mut best: Option<graphh_core::RunResult> = None;
        for _ in 0..3 {
            let run = crate::run_graphh_config(&p, &program, config.clone(), Arc::clone(&executor));
            if best
                .as_ref()
                .is_none_or(|b| run.wall_clock_seconds < b.wall_clock_seconds)
            {
                best = Some(run);
            }
        }
        best.expect("three runs happened")
    };

    let mut rows = Vec::new();
    for servers in [1u32, 2, 4] {
        for threads in [1u32, 2, 4] {
            let seq = best_of_3(servers, threads, Arc::new(SequentialExecutor::new()));
            let thr = best_of_3(servers, threads, Arc::new(ThreadedExecutor::new()));
            let identical = seq.values.len() == thr.values.len()
                && seq
                    .values
                    .iter()
                    .zip(&thr.values)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            debug_assert!(
                (seq.metrics.total_seconds() - thr.metrics.total_seconds()).abs() < 1e-9,
                "simulated time is a deterministic function of the workload"
            );
            rows.push(RuntimeRow {
                servers,
                threads_per_server: threads,
                sequential_wall_seconds: seq.wall_clock_seconds,
                threaded_wall_seconds: thr.wall_clock_seconds,
                simulated_seconds: seq.metrics.total_seconds(),
                identical,
            });
        }
    }
    rows
}

/// One measured (registry program × direction mode) configuration of the
/// kernel sweep — the per-kernel axis of `BENCH_runtime.json`.
///
/// `identical` is the gate CI's perf smoke enforces: this row's sequential
/// *and* threaded runs must both be bit-identical to the pull-forced
/// sequential reference of the same program, so the direction machinery
/// (push path, auto switching) can never silently change results.
pub struct KernelSweepRow {
    /// Registry name of the program (`pagerank`, `bfs-dopt`, ...).
    pub program: &'static str,
    /// Direction mode of this row: `"pull"` (forced) or `"auto"`.
    pub mode: &'static str,
    /// Best wall-clock seconds, sequential reference executor.
    pub sequential_wall_seconds: f64,
    /// Best wall-clock seconds, threaded runtime.
    pub threaded_wall_seconds: f64,
    /// Supersteps the sequential run executed (convergence point).
    pub supersteps_run: u32,
    /// Both executors bit-identical to the pull-forced sequential reference.
    pub identical: bool,
}

/// Measure the kernel sweep: every registry program × {pull-forced, auto}
/// direction mode, sequential and threaded wall-clock on a 3-server cluster,
/// each run bit-compared against the program's pull-forced sequential
/// reference. Pull-only programs resolve `auto` to pull, so their two rows
/// double as a same-input stability check.
pub fn kernel_sweep() -> Vec<KernelSweepRow> {
    use graphh_core::registry::{ProgramContext, ProgramOptions, PROGRAMS};
    use graphh_core::{DirectionMode, SequentialExecutor};
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_graph::GraphBuilder;
    use graphh_runtime::ThreadedExecutor;
    use std::sync::Arc;

    const SERVERS: u32 = 3;
    let dir = RmatGenerator::new(9, 8).generate(EXPERIMENT_SEED);
    let pdir = graphh_partition::Spe::partition(
        &dir,
        &graphh_partition::SpeConfig::with_tile_count("sweep", &dir, 12),
    )
    .expect("partition");
    let base = RmatGenerator::new(8, 6)
        .simplified()
        .generate(EXPERIMENT_SEED);
    let mut b = GraphBuilder::new()
        .with_num_vertices(base.num_vertices())
        .symmetric(true);
    for e in base.edges().iter() {
        b.add_edge(e);
    }
    let sym = b.build().expect("symmetric sweep graph");
    let psym = graphh_partition::Spe::partition(
        &sym,
        &graphh_partition::SpeConfig::with_tile_count("sweep-sym", &sym, 12),
    )
    .expect("partition");

    let mut rows = Vec::new();
    for spec in PROGRAMS {
        let (graph, part) = if spec.symmetrize_input {
            (&sym, &psym)
        } else {
            (&dir, &pdir)
        };
        let mut opts = ProgramOptions::new();
        if spec.accepts("supersteps") {
            opts.set("supersteps", "10");
        }
        let program = spec
            .build(&ProgramContext::new(graph.out_degrees()), &opts)
            .expect("registry build");
        let reference = crate::run_graphh_config(
            part,
            program.as_ref(),
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
                .with_direction_mode(DirectionMode::ForcePull),
            Arc::new(SequentialExecutor::new()),
        );
        for (mode_name, mode) in [
            ("pull", DirectionMode::ForcePull),
            ("auto", DirectionMode::Auto),
        ] {
            let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
                .with_direction_mode(mode);
            let seq = crate::run_graphh_config(
                part,
                program.as_ref(),
                config.clone(),
                Arc::new(SequentialExecutor::new()),
            );
            let thr = crate::run_graphh_config(
                part,
                program.as_ref(),
                config,
                Arc::new(ThreadedExecutor::new()),
            );
            let identical = [&seq, &thr].iter().all(|run| {
                run.values.len() == reference.values.len()
                    && run
                        .values
                        .iter()
                        .zip(&reference.values)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            });
            rows.push(KernelSweepRow {
                program: spec.name,
                mode: mode_name,
                sequential_wall_seconds: seq.wall_clock_seconds,
                threaded_wall_seconds: thr.wall_clock_seconds,
                supersteps_run: seq.supersteps_run,
                identical,
            });
        }
    }
    rows
}

/// Per-phase wall-clock breakdown of one traced [`ThreadedExecutor`] run —
/// the observability layer's span stream aggregated by phase name. This is
/// the per-phase wall-clock axis of `BENCH_runtime.json`: it says *where* the
/// threaded executor's wall-clock goes (compute vs encode vs plane flush vs
/// barrier wait), which the single `threaded_wall_s` number cannot.
///
/// [`ThreadedExecutor`]: graphh_runtime::ThreadedExecutor
pub struct PhaseBreakdown {
    /// Cluster size of the traced run.
    pub servers: u32,
    /// Compute threads per server of the traced run.
    pub threads_per_server: u32,
    /// Supersteps the traced run executed.
    pub supersteps: u32,
    /// Per-span-name totals, largest wall-clock share first.
    pub phases: Vec<PhaseTotal>,
}

/// Aggregated wall-clock total for one span name across every lane.
pub struct PhaseTotal {
    /// Span category (`"load"`, `"superstep"`, `"pool"`).
    pub cat: &'static str,
    /// Span name (e.g. `"tile-compute"`, `"barrier-wait"`).
    pub name: &'static str,
    /// How many spans were recorded under this name.
    pub spans: u64,
    /// Summed span duration in seconds (lanes run concurrently, so totals
    /// can exceed the run's wall-clock — they are per-lane time, not elapsed
    /// time).
    pub total_seconds: f64,
}

/// Sum span durations by `(category, name)`, largest total first (name as the
/// deterministic tiebreak).
pub fn aggregate_phases(spans: &[graphh_obs::SpanEvent]) -> Vec<PhaseTotal> {
    let mut totals: Vec<PhaseTotal> = Vec::new();
    for s in spans {
        let secs = s.dur_us as f64 / 1e6;
        match totals
            .iter_mut()
            .find(|t| t.cat == s.cat && t.name == s.name)
        {
            Some(t) => {
                t.spans += 1;
                t.total_seconds += secs;
            }
            None => totals.push(PhaseTotal {
                cat: s.cat,
                name: s.name,
                spans: 1,
                total_seconds: secs,
            }),
        }
    }
    totals.sort_by(|a, b| {
        b.total_seconds
            .total_cmp(&a.total_seconds)
            .then(a.name.cmp(b.name))
    });
    totals
}

/// Measure the per-phase wall-clock breakdown: one traced threaded run of the
/// same RMAT scale-10 PageRank workload the executor sweep times, at the
/// sweep's largest cluster size.
pub fn phase_breakdown() -> PhaseBreakdown {
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_obs::{TraceConfig, Tracer};
    use graphh_runtime::ThreadedExecutor;
    use std::sync::Arc;

    const SERVERS: u32 = 4;
    const THREADS: u32 = 2;
    let g = RmatGenerator::new(10, 16).generate(EXPERIMENT_SEED);
    let p = graphh_partition::Spe::partition(
        &g,
        &graphh_partition::SpeConfig::with_tile_count("rmat-10", &g, 16),
    )
    .expect("partition");
    let program = graphh_core::PageRank::new(20);
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
        .with_threads_per_server(THREADS);

    let tracer = Tracer::new();
    let executor = Arc::new(ThreadedExecutor::with_trace(TraceConfig {
        tracer: tracer.clone(),
    }));
    let run = crate::run_graphh_config(&p, &program, config, executor);
    PhaseBreakdown {
        servers: SERVERS,
        threads_per_server: THREADS,
        supersteps: run.supersteps_run,
        phases: aggregate_phases(&tracer.drain()),
    }
}

/// Render measured rows as machine-readable JSON (the report binary writes
/// this to `BENCH_runtime.json` so the perf trajectory is recorded run over
/// run). The header records the host core count and the swept axes so a ≤1×
/// speedup on a small runner reads as the hardware's verdict, not a
/// regression.
pub fn runtime_json(
    rows: &[RuntimeRow],
    sweep: &[KernelSweepRow],
    pool: &PoolBench,
    plane: &PlaneBench,
    codec: &CodecBench,
    phase: &PhaseBreakdown,
) -> String {
    let mut servers_swept: Vec<u32> = rows.iter().map(|r| r.servers).collect();
    servers_swept.dedup();
    let mut threads_swept: Vec<u32> = rows.iter().map(|r| r.threads_per_server).collect();
    threads_swept.sort_unstable();
    threads_swept.dedup();
    let join = |values: &[u32]| {
        values
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = format!(
        "{{\n  \"experiment\": \"runtime\",\n  \"workload\": \"rmat-scale10-ef16-pagerank-20\",\n  \
         \"host_cores\": {},\n  \"servers_swept\": [{}],\n  \"threads_per_server_swept\": [{}],\n  \
         \"note\": \"speedup needs host_cores > servers * threads_per_server; single-core runners honestly report <=1x\",\n  \
         \"seconds_note\": \"*_wall_s keys are measured host wall-clock; simulated_s is the cost model's predicted cluster time (executor-independent)\",\n  \
         \"rows\": [\n",
        host_cores(),
        join(&servers_swept),
        join(&threads_swept),
    );
    for (i, row) in rows.iter().enumerate() {
        writeln!(
            out,
            "    {{\"servers\": {}, \"threads_per_server\": {}, \"sequential_wall_s\": {:.6}, \"threaded_wall_s\": {:.6}, \"simulated_s\": {:.6}, \"speedup\": {:.4}, \"identical\": {}}}{}",
            row.servers,
            row.threads_per_server,
            row.sequential_wall_seconds,
            row.threaded_wall_seconds,
            row.simulated_seconds,
            row.speedup(),
            row.identical,
            if i + 1 < rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"kernel_sweep_note\": \"per registry program x direction mode; identical \
         gates both executors bit-equal to the pull-forced sequential reference\",\n  \
         \"kernel_sweep\": [\n",
    );
    for (i, row) in sweep.iter().enumerate() {
        writeln!(
            out,
            "    {{\"program\": \"{}\", \"mode\": \"{}\", \"sequential_wall_s\": {:.6}, \
             \"threaded_wall_s\": {:.6}, \"supersteps\": {}, \"identical\": {}}}{}",
            row.program,
            row.mode,
            row.sequential_wall_seconds,
            row.threaded_wall_seconds,
            row.supersteps_run,
            row.identical,
            if i + 1 < sweep.len() { "," } else { "" }
        )
        .unwrap();
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        "  \"pool_microbench\": {{\"phases\": {}, \"items\": {}, \"threads\": {}, \
         \"spawn_per_phase_s\": {:.6}, \"persistent_pool_s\": {:.6}, \"speedup\": {:.4}}},",
        pool.phases,
        pool.items,
        pool.threads,
        pool.spawning_seconds,
        pool.persistent_seconds,
        pool.speedup()
    )
    .unwrap();
    writeln!(
        out,
        "  \"planes_swept\": [\"socket\", \"poll\"],\n  \
         \"plane_microbench\": {{\"endpoints\": 2, \"supersteps\": {}, \"messages_per_superstep\": {}, \
         \"payload_bytes\": {}, \"socket_s\": {:.6}, \"poll_s\": {:.6}, \"socket_over_poll\": {:.4}}},",
        plane.supersteps,
        plane.messages_per_superstep,
        plane.payload_bytes,
        plane.socket_seconds,
        plane.poll_seconds,
        plane.ratio()
    )
    .unwrap();
    writeln!(
        out,
        "  \"codec_microbench\": {{\"range\": {}, \"rows\": [",
        codec.range
    )
    .unwrap();
    for (i, row) in codec.rows.iter().enumerate() {
        writeln!(
            out,
            "    {{\"encoding\": \"{}\", \"updates\": {}, \"wire_bytes\": {}, \
             \"encode_mb_s\": {:.1}, \"encode_into_mb_s\": {:.1}, \
             \"decode_mb_s\": {:.1}, \"decode_each_mb_s\": {:.1}}}{}",
            row.encoding,
            row.updates,
            row.wire_bytes,
            row.encode_mb_s,
            row.encode_into_mb_s,
            row.decode_mb_s,
            row.decode_each_mb_s,
            if i + 1 < codec.rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    out.push_str("  ],\n  \"compressed\": [\n");
    for (i, row) in codec.compressed.iter().enumerate() {
        writeln!(
            out,
            "    {{\"compressor\": \"{}\", \"plain_bytes\": {}, \"wire_bytes\": {}, \
             \"encode_mb_s\": {:.1}, \"encode_into_mb_s\": {:.1}, \
             \"speedup\": {:.4}, \"identical\": {}}}{}",
            row.compressor,
            row.plain_bytes,
            row.wire_bytes,
            row.encode_mb_s,
            row.encode_into_mb_s,
            row.speedup(),
            row.identical,
            if i + 1 < codec.compressed.len() {
                ","
            } else {
                ""
            }
        )
        .unwrap();
    }
    out.push_str("  ]},\n");
    writeln!(
        out,
        "  \"phase_breakdown\": {{\"executor\": \"threaded\", \"servers\": {}, \
         \"threads_per_server\": {}, \"supersteps\": {}, \
         \"note\": \"per-lane wall-clock totals from one traced run; lanes run concurrently so totals can exceed elapsed time\", \
         \"phases\": [",
        phase.servers, phase.threads_per_server, phase.supersteps
    )
    .unwrap();
    for (i, t) in phase.phases.iter().enumerate() {
        writeln!(
            out,
            "    {{\"cat\": \"{}\", \"name\": \"{}\", \"spans\": {}, \"total_wall_s\": {:.6}}}{}",
            t.cat,
            t.name,
            t.spans,
            t.total_seconds,
            if i + 1 < phase.phases.len() { "," } else { "" }
        )
        .unwrap();
    }
    out.push_str("  ]}\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_tables_render() {
        let t1 = table1_datasets();
        assert!(t1.contains("Twitter-2010") && t1.contains("EU-2015"));
        let t3 = table3_cost_comparison(Dataset::Uk2007);
        assert!(t3.contains("GraphH") && t3.contains("Chaos"));
        let t4 = table4_input_sizes();
        assert!(t4.lines().count() >= 6);
        let f1a = fig1a_memory_requirements();
        assert!(f1a.contains("Pregel+"));
        let f6a = fig6a_replication_policies();
        assert!(f6a.contains("UK-2014"));
    }

    /// The transport axis must actually run on both planes (a hang or
    /// deadlock here would stall CI's `report runtime` step).
    #[test]
    fn plane_microbench_measures_both_planes() {
        let bench = plane_loopback_microbench();
        assert!(bench.socket_seconds > 0.0);
        assert!(bench.poll_seconds > 0.0);
        let codec = CodecBench {
            range: 1,
            rows: Vec::new(),
            compressed: Vec::new(),
        };
        let json = runtime_json(
            &[],
            &tiny_sweep(),
            &pool_spawn_microbench(),
            &bench,
            &codec,
            &tiny_phases(),
        );
        assert!(json.contains("\"planes_swept\": [\"socket\", \"poll\"]"));
        assert!(json.contains("\"plane_microbench\""));
        assert!(json.contains("\"codec_microbench\""));
        assert!(json.contains("\"phase_breakdown\""));
        assert!(json.contains("\"name\": \"tile-compute\""));
        assert!(json.contains("\"kernel_sweep\""));
        assert!(json.contains("\"program\": \"bfs-dopt\""));
    }

    /// The codec microbench must measure all four paths on both encodings,
    /// and its rows must render into the runtime JSON record. Runs a tiny
    /// sized variant: the full 100 MB-per-measurement workload takes seconds
    /// unoptimized and belongs to `report runtime`, not `cargo test`.
    #[test]
    fn codec_microbench_measures_both_encodings_and_all_paths() {
        let bench = codec_microbench_sized(2048, 64 * 1024);
        assert_eq!(bench.rows.len(), 2);
        assert_eq!(bench.rows[0].encoding, "dense");
        assert_eq!(bench.rows[1].encoding, "sparse");
        for row in &bench.rows {
            assert!(row.encode_mb_s > 0.0, "{}", row.encoding);
            assert!(row.encode_into_mb_s > 0.0, "{}", row.encoding);
            assert!(row.decode_mb_s > 0.0, "{}", row.encoding);
            assert!(row.decode_each_mb_s > 0.0, "{}", row.encoding);
        }
        // One row per compressed codec (Raw takes the uncompressed path), and
        // the scratch-reusing path must stay byte-identical to the allocating
        // one — the invariant CI's perf smoke greps for in the JSON.
        let names: Vec<&str> = bench.compressed.iter().map(|r| r.compressor).collect();
        assert_eq!(names, ["snappy", "zlib-1", "zlib-3", "varint-delta"]);
        for row in &bench.compressed {
            assert!(row.encode_mb_s > 0.0, "{}", row.compressor);
            assert!(row.encode_into_mb_s > 0.0, "{}", row.compressor);
            assert!(row.wire_bytes > 0, "{}", row.compressor);
            assert!(
                row.identical,
                "{}: scratch reuse changed wire bytes",
                row.compressor
            );
        }
        let json = runtime_json(
            &[],
            &tiny_sweep(),
            &pool_spawn_microbench(),
            &tiny_plane(),
            &bench,
            &tiny_phases(),
        );
        assert!(json.contains("\"encoding\": \"dense\""));
        assert!(json.contains("\"encode_into_mb_s\""));
        assert!(json.contains("\"compressed\": ["));
        assert!(json.contains("\"compressor\": \"zlib-1\""));
    }

    fn tiny_sweep() -> Vec<KernelSweepRow> {
        vec![KernelSweepRow {
            program: "bfs-dopt",
            mode: "auto",
            sequential_wall_seconds: 0.1,
            threaded_wall_seconds: 0.1,
            supersteps_run: 4,
            identical: true,
        }]
    }

    fn tiny_plane() -> PlaneBench {
        PlaneBench {
            supersteps: 0,
            messages_per_superstep: 0,
            payload_bytes: 0,
            socket_seconds: 1.0,
            poll_seconds: 1.0,
        }
    }

    fn tiny_phases() -> PhaseBreakdown {
        PhaseBreakdown {
            servers: 2,
            threads_per_server: 1,
            supersteps: 3,
            phases: vec![PhaseTotal {
                cat: "superstep",
                name: "tile-compute",
                spans: 6,
                total_seconds: 0.5,
            }],
        }
    }

    /// The phase-breakdown aggregation: spans with the same (cat, name) fold
    /// into one total, ordered largest-first.
    #[test]
    fn aggregate_phases_folds_and_orders() {
        use graphh_obs::SpanEvent;
        let span = |name: &'static str, dur_us: u64| SpanEvent {
            name,
            cat: "superstep",
            tid: 1,
            start_us: 0,
            dur_us,
            superstep: Some(0),
            direction: None,
        };
        let totals = aggregate_phases(&[
            span("apply", 10),
            span("tile-compute", 100),
            span("apply", 5),
        ]);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].name, "tile-compute");
        assert_eq!(totals[1].name, "apply");
        assert_eq!(totals[1].spans, 2);
        assert!((totals[1].total_seconds - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn fig9_row_shape_single_config() {
        // A single small configuration exercises the full multi-system path cheaply.
        let g = experiment_graph(Dataset::Twitter2010);
        let p = partition_for_experiments(&g, "twitter-2010");
        let runs = run_all_systems_pagerank(&g, &p, 3, 3);
        assert_eq!(runs.len(), 6);
        // The headline claim: GraphH beats the out-of-core systems by a wide margin
        // and is competitive with (or beats) the in-memory systems.
        let graphh = runs[0].avg_seconds;
        let graphd = runs[4].avg_seconds;
        let chaos = runs[5].avg_seconds;
        assert!(
            graphd > graphh,
            "GraphD {graphd} should be slower than GraphH {graphh}"
        );
        assert!(
            chaos > graphh,
            "Chaos {chaos} should be slower than GraphH {graphh}"
        );
    }
}
