//! `graphh-node` — one GraphH server as one OS process.
//!
//! Runs a single simulated server of a `--servers`-node cluster over the TCP
//! broadcast plane: every process rebuilds the same deterministic workload
//! from the same CLI parameters, connects to its peers over loopback (or any
//! network), and executes the identical superstep loop the in-process
//! executors run — every broadcast crossing the wire through the real
//! `MessageCodec` *and* the length-prefixed frame protocol. Results are
//! bit-identical to the sequential reference executor; the `multiprocess`
//! integration test and the CI smoke job assert exactly that.
//!
//! ```text
//! # 2-server PageRank over loopback (run in two shells / background jobs):
//! graphh-node --id 0 --servers 2 --listen 127.0.0.1:4750 \
//!     --peers 127.0.0.1:4750,127.0.0.1:4751 --program pagerank --out v0.bin
//! graphh-node --id 1 --servers 2 --listen 127.0.0.1:4751 \
//!     --peers 127.0.0.1:4750,127.0.0.1:4751 --program pagerank --out v1.bin
//! cmp v0.bin v1.bin   # byte-identical replicas
//! ```
//!
//! Workload flags (must match on every node): `--program NAME` (any program
//! in the [`graphh_core::registry`] — run `--list-programs` to see them),
//! `--program-arg key=value` (repeatable, per-program options such as
//! `source=7` or `alpha=14`), `--direction auto|pull|push` (push/pull engine
//! policy — never changes results or wire bytes, see docs/ALGORITHMS.md),
//! `--scale`, `--edge-factor`, `--seed`, `--tiles`, `--supersteps`,
//! `--threads-per-server`, `--compressor none|raw|snappy|zlib-1|zlib-3|varint-delta`
//! (message compressor; defaults to the paper's snappy — compression never
//! changes decoded values, only wire bytes). Runtime flags: `--id`, `--servers`, `--listen`,
//! `--peers` (comma-separated, indexed by server id), `--plane socket|poll`
//! (blocking reader-thread-per-peer vs single event-loop thread — same wire
//! protocol, see docs/WIRE.md), `--out`, `--establish-timeout-secs`.
//!
//! Instead of enumerating every peer, a node may bootstrap by **seed
//! discovery** (see `docs/WIRE.md` §10): `--seed HOST:PORT` (repeatable)
//! names any already-listening cluster member; the node dials a live seed,
//! exchanges `GHHM` membership frames, and learns the full `server id →
//! address` book before establishing. `--peers` and seed addresses are
//! mutually exclusive — the static table and the gossiped book are
//! alternative sources of truth. (`--seed` keeps its workload meaning too:
//! a bare integer is the graph-generator RNG seed, a `host:port` value is a
//! membership seed — the two value shapes never overlap.) With `--resilient`,
//! a replacement process for a dead id may bind a *different* port: it
//! announces itself with a bumped incarnation, the book update gossips to
//! every survivor, and redials converge on the new address mid-run.
//!
//! Observability flags (see `docs/OBSERVABILITY.md`): `--trace-out FILE`
//! enables phase tracing and writes a Chrome trace-event JSON file loadable
//! in `chrome://tracing` / Perfetto; `--metrics-out FILE` writes this node's
//! run summary plus a snapshot of every process-wide counter as JSON. Neither
//! flag changes results or wire bytes.
//!
//! Fault-tolerance flags (see `docs/WIRE.md` §9): `--resilient` establishes
//! the cluster with the resilient wire protocol — transient peer failures
//! park the link, the survivor redials (or accepts a redial) with the `GHHR`
//! resume handshake, and retained frames are replayed, so a node process can
//! be killed and restarted mid-run without changing the final values.
//! `--checkpoint-dir DIR` snapshots replica values + superstep cursor every
//! `--checkpoint-every N` supersteps (GHHC files, atomic rename); on startup
//! an existing checkpoint for this server id is loaded automatically and the
//! run resumes at its cursor while peers replay the delta.
//! `--reconnect-deadline-secs N` bounds how long a lost peer may stay away;
//! `--superstep-delay-ms N` is a chaos-test aid that widens the window for
//! killing a node mid-run (never changes values).

use graphh_bench::multiprocess::{encode_values, NodeWorkload};
use graphh_cluster::ClusterConfig;
use graphh_compress::Codec;
use graphh_core::exec::ExecutionPlan;
use graphh_core::registry::PROGRAMS;
use graphh_core::{DirectionMode, GraphHConfig};
use graphh_obs::{chrome_trace_json, global_counters, Tracer};
use graphh_pool::WorkerPool;
use graphh_runtime::{
    run_worker_with, validate_peer_table, BoundTcpPlane, CheckpointSink, MetricsSlice,
    ResilienceConfig, SuperstepBarrier, TcpPlaneKind, WorkerOptions,
};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

struct Args {
    id: u32,
    servers: u32,
    listen: String,
    peers: Vec<SocketAddr>,
    /// Membership seed addresses (`--seed HOST:PORT`, repeatable) — the
    /// address book is learned from a live seed instead of `--peers`.
    seeds: Vec<SocketAddr>,
    plane: TcpPlaneKind,
    direction: DirectionMode,
    workload: NodeWorkload,
    threads_per_server: Option<u32>,
    /// Outer `None` = flag absent (keep the paper default); inner value is
    /// the configured message compressor (`None` = uncompressed).
    compressor: Option<Option<Codec>>,
    out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    establish_timeout: Duration,
    /// Establish with the resilient wire protocol (reconnect-and-resume).
    resilient: bool,
    /// Directory for periodic GHHC checkpoints (implies auto-resume from an
    /// existing checkpoint on startup).
    checkpoint_dir: Option<String>,
    /// Checkpoint cadence in supersteps.
    checkpoint_every: u32,
    /// How long a lost peer may stay away before the run fails terminally.
    reconnect_deadline: Duration,
    /// Chaos-test aid: artificial pause at the top of each superstep.
    superstep_delay: Option<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphh-node --id I --servers P --listen ADDR \
         (--peers A0,A1,... | --seed HOST:PORT...) \
         [--plane socket|poll] [--program NAME] [--program-arg K=V]... \
         [--direction auto|pull|push] [--scale S] \
         [--edge-factor F] [--seed N] [--tiles T] [--supersteps N] \
         [--threads-per-server T] \
         [--compressor none|raw|snappy|zlib-1|zlib-3|varint-delta] \
         [--out FILE] [--trace-out FILE] \
         [--metrics-out FILE] [--establish-timeout-secs N] \
         [--resilient] [--checkpoint-dir DIR] [--checkpoint-every N] \
         [--reconnect-deadline-secs N] [--superstep-delay-ms N] [--list-programs]"
    );
    eprintln!("programs:");
    for spec in PROGRAMS {
        eprintln!("  {:18} {}", spec.name, spec.summary);
        for (key, doc) in spec.options {
            eprintln!("      {key}= {doc}");
        }
    }
    std::process::exit(2);
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut servers = None;
    let mut listen = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut seeds: Vec<SocketAddr> = Vec::new();
    let mut workload = NodeWorkload {
        program: "pagerank".into(),
        program_args: Vec::new(),
        scale: 8,
        edge_factor: 6,
        seed: 2017,
        tiles: 9,
        supersteps: 10,
    };
    let mut plane = TcpPlaneKind::Socket;
    let mut direction = DirectionMode::Auto;
    let mut threads_per_server = None;
    let mut compressor = None;
    let mut out = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut establish_timeout = Duration::from_secs(10);
    let mut resilient = false;
    let mut checkpoint_dir = None;
    let mut checkpoint_every = 1;
    let mut reconnect_deadline = ResilienceConfig::default().reconnect_deadline;
    let mut superstep_delay = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" || flag == "--list-programs" {
            usage();
        }
        if flag == "--resilient" {
            resilient = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag.as_str() {
            "--id" => id = Some(value.parse().map_err(|e| bad(&e))?),
            "--servers" => servers = Some(value.parse().map_err(|e| bad(&e))?),
            "--listen" => listen = Some(value),
            "--peers" => {
                peers = value
                    .split(',')
                    .map(|a| a.trim().parse().map_err(|e| bad(&e)))
                    .collect::<Result<_, _>>()?;
            }
            "--plane" => plane = value.parse()?,
            "--direction" => direction = value.parse()?,
            "--program" => workload.program = value,
            "--program-arg" => workload.program_args.push(value),
            "--scale" => workload.scale = value.parse().map_err(|e| bad(&e))?,
            "--edge-factor" => workload.edge_factor = value.parse().map_err(|e| bad(&e))?,
            // `--seed` is overloaded by value shape: a `host:port` socket
            // address is a membership seed node (repeatable, docs/WIRE.md
            // §10); a bare integer keeps its original meaning as the
            // graph-generator RNG seed. The domains are disjoint — an
            // integer never parses as a socket address and vice versa.
            "--seed" => {
                if let Ok(addr) = value.parse::<SocketAddr>() {
                    seeds.push(addr);
                } else {
                    workload.seed = value.parse().map_err(|_| {
                        format!(
                            "bad value for --seed: {value} (expected a membership \
                             seed HOST:PORT or an integer RNG seed)"
                        )
                    })?;
                }
            }
            "--tiles" => workload.tiles = value.parse().map_err(|e| bad(&e))?,
            "--supersteps" => workload.supersteps = value.parse().map_err(|e| bad(&e))?,
            "--threads-per-server" => {
                threads_per_server = Some(value.parse().map_err(|e| bad(&e))?)
            }
            "--compressor" => compressor = Some(parse_compressor(&value)?),
            "--out" => out = Some(value),
            "--trace-out" => trace_out = Some(value),
            "--metrics-out" => metrics_out = Some(value),
            "--establish-timeout-secs" => {
                establish_timeout = Duration::from_secs(value.parse().map_err(|e| bad(&e))?)
            }
            "--checkpoint-dir" => checkpoint_dir = Some(value),
            "--checkpoint-every" => checkpoint_every = value.parse().map_err(|e| bad(&e))?,
            "--reconnect-deadline-secs" => {
                reconnect_deadline = Duration::from_secs(value.parse().map_err(|e| bad(&e))?)
            }
            "--superstep-delay-ms" => {
                superstep_delay = Some(Duration::from_millis(value.parse().map_err(|e| bad(&e))?))
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let id = id.ok_or("--id is required")?;
    let servers = servers.ok_or("--servers is required")?;
    let listen = listen.ok_or("--listen is required")?;
    if peers.is_empty() && seeds.is_empty() && servers > 1 {
        return Err("--peers or --seed is required for clusters with more than one server".into());
    }
    if checkpoint_dir.is_some() && !resilient {
        // A restart without the resilient protocol cannot rejoin its peers
        // (nothing retains or replays the delta), so the combination is a
        // misconfiguration, not a degraded mode.
        return Err("--checkpoint-dir requires --resilient".into());
    }
    Ok(Args {
        id,
        servers,
        listen,
        peers,
        seeds,
        plane,
        direction,
        workload,
        threads_per_server,
        compressor,
        out,
        trace_out,
        metrics_out,
        establish_timeout,
        resilient,
        checkpoint_dir,
        checkpoint_every,
        reconnect_deadline,
        superstep_delay,
    })
}

/// Parse a `--compressor` value: `none` disables compression; every other
/// value is a codec's canonical [`Codec::name`].
fn parse_compressor(value: &str) -> Result<Option<Codec>, String> {
    if value == "none" {
        return Ok(None);
    }
    Codec::ALL
        .into_iter()
        .find(|c| c.name() == value)
        .map(Some)
        .ok_or_else(|| {
            format!(
                "bad value for --compressor: {value} (none|raw|snappy|zlib-1|zlib-3|varint-delta)"
            )
        })
}

fn run(args: Args) -> Result<(), String> {
    let started = Instant::now();

    // Bind the listener before the (potentially slow) deterministic workload
    // build, so peers' connect retries succeed as early as possible.
    let bound = BoundTcpPlane::bind(args.plane, args.id, args.servers, args.listen.as_str())
        .map_err(|e| format!("bind listener: {e}"))?;
    eprintln!(
        "graphh-node {}/{}: listening on {} (plane {:?})",
        args.id,
        args.servers,
        bound.local_addr().map_err(|e| e.to_string())?,
        args.plane,
    );

    let mut config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(args.servers))
        .with_direction_mode(args.direction);
    if let Some(threads) = args.threads_per_server {
        config = config.with_threads_per_server(threads);
    }
    if let Some(compressor) = args.compressor {
        config.message_compressor = compressor;
    }
    config.validate().map_err(|e| e.to_string())?;

    let pool = WorkerPool::with_host_parallelism();
    let (partitioned, program) = args.workload.build(&pool)?;
    let plan = ExecutionPlan::prepare(&config, &partitioned, program.as_ref())
        .map_err(|e| format!("prepare plan: {e}"))?;
    drop(pool); // the run uses the per-server pool inside `ServerState`

    let peer_addrs: Vec<SocketAddr> = if args.servers == 1 && args.seeds.is_empty() {
        vec![bound.local_addr().map_err(|e| e.to_string())?]
    } else {
        args.peers.clone()
    };
    validate_peer_table(
        args.id,
        args.servers,
        &peer_addrs,
        &args.seeds,
        bound.local_addr().ok(),
    )
    .map_err(|e| format!("invalid peer configuration: {e}"))?;

    // Checkpoint auto-resume: an existing GHHC snapshot for this server id
    // means a previous incarnation of this process died mid-run — restart at
    // its cursor and let peers replay the delta (hence `resuming_from`: our
    // receive cursors open at the checkpointed superstep, and the resume
    // handshake asks every peer for exactly the frames we lost).
    let checkpoint_sink = args
        .checkpoint_dir
        .as_ref()
        .map(|dir| CheckpointSink::new(dir, args.checkpoint_every));
    let resumed = match &checkpoint_sink {
        Some(sink) => sink
            .load(args.id)
            .map_err(|e| format!("load checkpoint: {e}"))?,
        None => None,
    };
    let start_superstep = resumed.as_ref().map_or(0, |c| c.next_superstep);

    let discovered = !args.seeds.is_empty();
    let mut plane = if discovered {
        // Seed discovery: learn the address book from a live seed over GHHM
        // before establishing; a restart announces itself under its server id
        // (bumping its incarnation if the book already lists the dead
        // address), so peers redial the *new* address mid-run.
        let view = bound
            .discover(&args.seeds, args.establish_timeout)
            .map_err(|e| format!("seed discovery: {e}"))?;
        eprintln!(
            "graphh-node {}/{}: address book discovered (version {}, incarnation {})",
            args.id,
            args.servers,
            view.handle.version(),
            view.incarnation,
        );
        if args.resilient {
            let config = ResilienceConfig {
                reconnect_deadline: args.reconnect_deadline,
                ..ResilienceConfig::resuming_from(start_superstep)
            };
            bound
                .establish_resilient_discovered(view, args.establish_timeout, config)
                .map_err(|e| format!("establish resilient cluster (discovered): {e}"))?
        } else {
            bound
                .establish_discovered(view, args.establish_timeout)
                .map_err(|e| format!("establish cluster (discovered): {e}"))?
        }
    } else if args.resilient {
        let config = ResilienceConfig {
            reconnect_deadline: args.reconnect_deadline,
            ..ResilienceConfig::resuming_from(start_superstep)
        };
        bound
            .establish_resilient(&peer_addrs, args.establish_timeout, config)
            .map_err(|e| format!("establish resilient cluster: {e}"))?
    } else {
        bound
            .establish_with_timeout(&peer_addrs, args.establish_timeout)
            .map_err(|e| format!("establish cluster: {e}"))?
    };
    eprintln!(
        "graphh-node {}/{}: cluster established ({} peers{}{}{})",
        args.id,
        args.servers,
        args.servers - 1,
        if args.resilient { ", resilient" } else { "" },
        if discovered { ", seed-discovered" } else { "" },
        if resumed.is_some() {
            format!(", resumed at superstep {start_superstep}")
        } else {
            String::new()
        },
    );

    // One worker per process: the local barrier is trivial, lockstep comes
    // from the broadcast plane's end-of-superstep framing.
    let barrier = SuperstepBarrier::new(1);
    let (metrics_tx, metrics_rx) = channel::<MetricsSlice>();
    let sid = plane.server_id();
    // Tracing is opt-in: without --trace-out the disabled tracer adds zero
    // allocations and zero clock reads to the superstep loop.
    let tracer = if args.trace_out.is_some() {
        Tracer::new()
    } else {
        Tracer::off()
    };
    let options = WorkerOptions {
        start_superstep,
        initial_values: resumed.as_ref().map(|c| c.values.clone()),
        initial_frontier: resumed.map(|c| c.frontier),
        checkpoint: checkpoint_sink,
        superstep_delay: args.superstep_delay,
    };
    let output = run_worker_with(
        &config,
        &plan,
        &partitioned,
        program.as_ref(),
        sid,
        plane.as_mut(),
        &barrier,
        &metrics_tx,
        &tracer,
        options,
    )
    .map_err(|e| format!("worker failed: {}", e.error))?;
    drop(metrics_tx);

    let slices: Vec<MetricsSlice> = metrics_rx.into_iter().collect();
    let sent: u64 = slices.iter().map(|s| s.metrics.network_sent_bytes).sum();
    let received: u64 = slices
        .iter()
        .map(|s| s.metrics.network_received_bytes)
        .sum();
    println!(
        "graphh-node {}/{}: {} supersteps={} program={} vertices={} \
         net_sent_bytes={sent} net_received_bytes={received} wall_seconds={:.3}",
        args.id,
        args.servers,
        program.name(),
        output.supersteps_run,
        args.workload.program,
        output.values.len(),
        started.elapsed().as_secs_f64(),
    );

    if let Some(path) = &args.out {
        std::fs::write(path, encode_values(&output.values))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("graphh-node {}: wrote {path}", args.id);
    }

    if let Some(path) = &args.trace_out {
        let trace = chrome_trace_json(
            &format!("graphh-node-{sid}"),
            std::process::id(),
            &tracer.drain(),
        );
        std::fs::write(path, trace).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("graphh-node {}: wrote trace {path}", args.id);
    }

    if let Some(path) = &args.metrics_out {
        // This process holds exactly one server's metric slices, so the
        // summary is hand-assembled here (the cluster-wide reduction needs
        // every server's slices and lives in the in-process executors).
        let metrics = node_metrics_json(
            &args,
            sid,
            program.name(),
            output.supersteps_run,
            output.values.len(),
            sent,
            received,
            started.elapsed().as_secs_f64(),
        );
        std::fs::write(path, metrics).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("graphh-node {}: wrote metrics {path}", args.id);
    }
    Ok(())
}

/// One node's run summary + the process-wide counter snapshot, as JSON.
#[allow(clippy::too_many_arguments)]
fn node_metrics_json(
    args: &Args,
    sid: u32,
    program: &str,
    supersteps_run: u32,
    vertices: usize,
    net_sent_bytes: u64,
    net_received_bytes: u64,
    wall_seconds: f64,
) -> String {
    // Counters register lazily on first touch, so a fault-free (or
    // non-resilient, or static-table) run would otherwise omit the whole
    // `fabric.*` / `membership.*` families from the snapshot. Pre-register
    // them all: a zero row in every run's JSON beats a key that appears only
    // when something went wrong.
    for name in [
        "fabric.reconnects",
        "fabric.replayed_frames",
        "fabric.checkpoint_bytes",
        "membership.announces",
        "membership.gossip_deltas",
        "membership.book_version",
        "membership.adoptions",
    ] {
        global_counters().counter(name);
    }
    format!(
        concat!(
            "{{\n",
            "  \"server\": {},\n",
            "  \"servers\": {},\n",
            "  \"plane\": \"{:?}\",\n",
            "  \"direction\": \"{}\",\n",
            "  \"program\": \"{}\",\n",
            "  \"supersteps_run\": {},\n",
            "  \"vertices\": {},\n",
            "  \"net_sent_bytes\": {},\n",
            "  \"net_received_bytes\": {},\n",
            "  \"wall_seconds\": {:.6},\n",
            "  \"counters\": {}\n",
            "}}\n"
        ),
        sid,
        args.servers,
        args.plane,
        args.direction.as_str(),
        graphh_obs::json::escape(program),
        supersteps_run,
        vertices,
        net_sent_bytes,
        net_received_bytes,
        wall_seconds,
        global_counters().snapshot_json(),
    )
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("graphh-node: {message}");
            usage();
        }
    };
    if let Err(message) = run(args) {
        eprintln!("graphh-node: {message}");
        std::process::exit(1);
    }
}
