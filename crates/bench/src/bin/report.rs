//! Prints the data behind every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! report                # print everything (and write BENCH_runtime.json)
//! report fig9 table5    # print selected experiments
//! report runtime        # executor shoot-out (also writes BENCH_runtime.json)
//! report --list         # list experiment ids
//! ```
//!
//! Whenever the `runtime` experiment runs, its measurements are additionally
//! written to `BENCH_runtime.json` in the current directory, so the wall-clock
//! trajectory of the executors is recorded machine-readably run over run.

use graphh_bench::*;
use graphh_graph::datasets::Dataset;

type Experiment = (&'static str, fn() -> String);

fn available() -> Vec<Experiment> {
    vec![
        ("table1", || table1_datasets()),
        ("fig1a", || fig1a_memory_requirements()),
        ("fig1b", || fig1b_execution_time()),
        ("table3", || table3_cost_comparison(Dataset::Uk2007)),
        ("table4", || table4_input_sizes()),
        ("fig6a", || fig6a_replication_policies()),
        ("fig6b", || fig6b_memory_usage()),
        ("table5", || table5_compression()),
        ("fig7", || fig7_cache_modes()),
        ("fig8", || fig8_communication(40)),
        ("fig9", || fig9_pagerank(6)),
        ("fig10", || fig10_sssp()),
        ("ablations", || ablations()),
        ("runtime", runtime_and_record_json),
    ]
}

/// The executor comparison: measure once (the sweep and the pool spawn-cost
/// microbenchmark), render the table from that measurement, and record the
/// same numbers to `BENCH_runtime.json`.
fn runtime_and_record_json() -> String {
    let rows = runtime_rows();
    let sweep = kernel_sweep();
    let pool = pool_spawn_microbench();
    let plane = plane_loopback_microbench();
    let codec = codec_microbench();
    let phases = phase_breakdown();
    let mut out = runtime_report(&rows, &sweep, &pool, &plane, &codec, &phases);
    match std::fs::write(
        "BENCH_runtime.json",
        runtime_json(&rows, &sweep, &pool, &plane, &codec, &phases),
    ) {
        Ok(()) => out.push_str("(wrote BENCH_runtime.json)\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_runtime.json: {e}\n")),
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = available();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&Experiment> = if args.is_empty() {
        experiments.iter().collect()
    } else {
        experiments
            .iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiment; use --list to see the available ids");
        std::process::exit(1);
    }
    for (name, f) in &selected {
        println!("==== {name} ====");
        println!("{}", f());
    }
}
