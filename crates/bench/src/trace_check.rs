//! Schema validators for the observability artifacts `graphh-node` writes
//! (`--trace-out`, `--metrics-out`).
//!
//! Built on `graphh_obs::JsonValue` — no external JSON tools — so both the
//! test suite and CI can assert "this traced run produced loadable files"
//! with `cargo test` alone. The formats are documented in
//! `docs/OBSERVABILITY.md` §3–4; these validators enforce exactly what that
//! document promises.

use graphh_obs::JsonValue;

/// What a valid Chrome trace file contained, for further assertions.
#[derive(Debug)]
pub struct TraceStats {
    /// Number of span events (excluding the `process_name` metadata event).
    pub spans: usize,
    /// Number of spans with category `"superstep"`.
    pub superstep_spans: usize,
    /// Distinct span names, sorted.
    pub names: Vec<String>,
}

/// Validate a Chrome trace-event JSON document as `chrome_trace_json` emits
/// it: `displayTimeUnit`, a `traceEvents` array opening with one
/// `process_name` metadata event, then complete (`"ph": "X"`) span events
/// with `name`/`cat`/`ts`/`dur`/`pid`/`tid`, where every `"superstep"`-
/// category span carries `args.superstep`.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let doc = JsonValue::parse(json).map_err(|e| format!("trace does not parse: {e}"))?;
    if doc.get("displayTimeUnit").and_then(JsonValue::as_str) != Some("ms") {
        return Err("displayTimeUnit must be \"ms\"".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("traceEvents must be an array")?;
    let meta = events.first().ok_or("traceEvents must not be empty")?;
    if meta.get("ph").and_then(JsonValue::as_str) != Some("M")
        || meta.get("name").and_then(JsonValue::as_str) != Some("process_name")
        || meta
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(JsonValue::as_str)
            .is_none()
    {
        return Err("first event must be the process_name metadata event".into());
    }

    let mut names: Vec<String> = Vec::new();
    let mut superstep_spans = 0;
    for (i, event) in events.iter().enumerate().skip(1) {
        let field = |key: &str| {
            event
                .get(key)
                .ok_or(format!("event {i}: missing \"{key}\""))
        };
        if field("ph")?.as_str() != Some("X") {
            return Err(format!("event {i}: span events must be complete (ph X)"));
        }
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: name must be a string"))?;
        let cat = field("cat")?
            .as_str()
            .ok_or(format!("event {i}: cat must be a string"))?;
        for key in ["ts", "dur", "pid", "tid"] {
            field(key)?
                .as_u64()
                .ok_or(format!("event {i}: {key} must be a non-negative integer"))?;
        }
        if cat == "superstep" {
            superstep_spans += 1;
            event
                .get("args")
                .and_then(|a| a.get("superstep"))
                .and_then(JsonValue::as_u64)
                .ok_or(format!(
                    "event {i} ({name}): superstep spans must carry args.superstep"
                ))?;
        }
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    }
    names.sort_unstable();
    Ok(TraceStats {
        spans: events.len() - 1,
        superstep_spans,
        names,
    })
}

/// What a valid `--metrics-out` file contained.
#[derive(Debug)]
pub struct MetricsStats {
    /// This node's server id.
    pub server: u64,
    /// Supersteps the run executed.
    pub supersteps_run: u64,
    /// The counter names in the snapshot, sorted.
    pub counter_names: Vec<String>,
}

/// Validate a `graphh-node --metrics-out` JSON document: the run-summary
/// fields plus a `counters` object mapping counter names to non-negative
/// integers.
pub fn validate_node_metrics(json: &str) -> Result<MetricsStats, String> {
    let doc = JsonValue::parse(json).map_err(|e| format!("metrics do not parse: {e}"))?;
    let int = |key: &str| {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or(format!("\"{key}\" must be a non-negative integer"))
    };
    let server = int("server")?;
    let servers = int("servers")?;
    if server >= servers {
        return Err(format!(
            "server {server} out of range for {servers} servers"
        ));
    }
    doc.get("program")
        .and_then(JsonValue::as_str)
        .ok_or("\"program\" must be a string")?;
    let supersteps_run = int("supersteps_run")?;
    int("vertices")?;
    int("net_sent_bytes")?;
    int("net_received_bytes")?;
    let wall = doc
        .get("wall_seconds")
        .and_then(JsonValue::as_f64)
        .ok_or("\"wall_seconds\" must be a number")?;
    if wall.is_nan() || wall < 0.0 {
        return Err(format!("wall_seconds must be non-negative, got {wall}"));
    }
    let counters = doc.get("counters").ok_or("missing \"counters\" object")?;
    let fields = match counters {
        JsonValue::Object(fields) => fields,
        _ => return Err("\"counters\" must be an object".into()),
    };
    let mut counter_names = Vec::with_capacity(fields.len());
    for (name, value) in fields {
        value
            .as_u64()
            .ok_or(format!("counter \"{name}\" must be a non-negative integer"))?;
        counter_names.push(name.clone());
    }
    counter_names.sort_unstable();
    Ok(MetricsStats {
        server,
        supersteps_run,
        counter_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_obs::{chrome_trace_json, Tracer};

    #[test]
    fn accepts_what_chrome_trace_json_emits() {
        let tracer = Tracer::new();
        let mut rec = tracer.thread(1);
        let s = rec.begin();
        rec.end_superstep(s, "tile-compute", "superstep", 0);
        let s = rec.begin();
        rec.end(s, "server-build", "load");
        drop(rec);
        let stats =
            validate_chrome_trace(&chrome_trace_json("node-0", 7, &tracer.drain())).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.superstep_spans, 1);
        assert_eq!(stats.names, vec!["server-build", "tile-compute"]);
    }

    #[test]
    fn rejects_superstep_span_without_args() {
        let json = r#"{
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "x"}},
    {"name": "apply", "cat": "superstep", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
  ]
}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("args.superstep"), "{err}");
    }

    #[test]
    fn rejects_metrics_with_non_integer_counter() {
        let json = r#"{
  "server": 0, "servers": 2, "program": "pagerank", "supersteps_run": 3,
  "vertices": 10, "net_sent_bytes": 1, "net_received_bytes": 1,
  "wall_seconds": 0.5, "counters": {"poll.bytes_written": -4}
}"#;
        let err = validate_node_metrics(json).unwrap_err();
        assert!(err.contains("poll.bytes_written"), "{err}");
    }
}
