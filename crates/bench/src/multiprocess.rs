//! Shared pieces of the multi-process runtime: the workload vocabulary of the
//! `graphh-node` binary and the value-file format it writes.
//!
//! A multi-process run has no shared memory, so every node process rebuilds
//! the *same* graph and partition from the same CLI parameters
//! ([`NodeWorkload::build`] is deterministic: seeded generators, order-
//! preserving partitioning) and then exchanges only broadcast frames over
//! TCP. The launcher (CI smoke job, the `multiprocess` integration test)
//! builds the identical workload in-process to diff the nodes' value files
//! against the sequential reference executor.

use graphh_core::registry::{find_program, program_names, ProgramContext, ProgramOptions};
use graphh_core::GabProgram;
use graphh_graph::generators::{GraphGenerator, RmatGenerator};
use graphh_graph::{Graph, GraphBuilder};
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use graphh_pool::WorkerPool;

/// Parameters that pin a node workload bit-for-bit across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWorkload {
    /// A [`graphh_core::registry`] program name (`pagerank`, `sssp`, `wcc`,
    /// `bfs`, `bfs-dopt`, `labelprop`, `degree-centrality`).
    pub program: String,
    /// Per-program `key=value` options (the `--program-arg` CLI values); must
    /// match on every process, like every other workload field.
    pub program_args: Vec<String>,
    /// RMAT scale (log2 vertices).
    pub scale: u32,
    /// RMAT edge factor.
    pub edge_factor: u32,
    /// Generator seed.
    pub seed: u64,
    /// Target tile count for the SPE.
    pub tiles: u32,
    /// Superstep cap handed to the program (only to programs that take one).
    pub supersteps: u32,
}

impl NodeWorkload {
    /// Deterministically construct the graph, partition and program every
    /// process of the cluster must agree on.
    ///
    /// The program comes from the registry; the graph is a seeded RMAT,
    /// symmetrised first when the program's [`ProgramSpec::symmetrize_input`]
    /// contract asks for it (WCC, label propagation).
    ///
    /// [`ProgramSpec::symmetrize_input`]: graphh_core::registry::ProgramSpec::symmetrize_input
    pub fn build(
        &self,
        pool: &WorkerPool,
    ) -> Result<(PartitionedGraph, Box<dyn GabProgram>), String> {
        let spec = find_program(&self.program).ok_or_else(|| {
            format!(
                "unknown program {:?} (expected one of: {})",
                self.program,
                program_names()
            )
        })?;
        let graph: Graph = if spec.symmetrize_input {
            let base = RmatGenerator::new(self.scale, self.edge_factor)
                .simplified()
                .generate(self.seed);
            let mut b = GraphBuilder::new()
                .with_num_vertices(base.num_vertices())
                .symmetric(true);
            for e in base.edges().iter() {
                b.add_edge(e);
            }
            b.build().map_err(|e| format!("symmetrise graph: {e}"))?
        } else {
            RmatGenerator::new(self.scale, self.edge_factor).generate(self.seed)
        };
        let ctx = ProgramContext::new(graph.out_degrees());
        let mut opts = ProgramOptions::parse(&self.program_args)?;
        // The workload-level superstep cap feeds programs that take one
        // (explicit program args still win: options are last-write-wins and
        // this default is prepended conceptually, appended never overriding).
        if spec.accepts("supersteps") && opts.get("supersteps").is_none() {
            opts.set("supersteps", &self.supersteps.to_string());
        }
        let program = spec.build(&ctx, &opts)?;
        let partitioned = Spe::partition_with_pool(
            &graph,
            &SpeConfig::with_tile_count("node", &graph, self.tiles),
            pool,
        )
        .map_err(|e| format!("partition: {e}"))?;
        Ok((partitioned, program))
    }
}

// The GHHV value-file codec now lives in the runtime (it is also the value
// section of GHHC checkpoint files — `graphh_runtime::checkpoint`); re-export
// it under its historical home so launchers keep one import path.
pub use graphh_runtime::{decode_values, encode_values, VALUES_MAGIC};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_losslessly() {
        let values = vec![
            0.0,
            -1.5,
            f64::MAX,
            1e-300,
            f64::from_bits(0x7ff8_0000_0000_0001),
        ];
        let decoded = decode_values(&encode_values(&values)).unwrap();
        assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_values(b"nope").is_err());
    }

    #[test]
    fn workload_build_is_deterministic_across_calls() {
        let w = NodeWorkload {
            program: "pagerank".into(),
            program_args: Vec::new(),
            scale: 7,
            edge_factor: 4,
            seed: 11,
            tiles: 6,
            supersteps: 3,
        };
        let pool = WorkerPool::with_host_parallelism();
        let (a, _) = w.build(&pool).unwrap();
        let (b, _) = w.build(&pool).unwrap();
        assert_eq!(a.tiles, b.tiles);
        assert_eq!(a.in_degrees, b.in_degrees);
    }

    #[test]
    fn unknown_program_is_rejected() {
        let w = NodeWorkload {
            program: "frobnicate".into(),
            program_args: Vec::new(),
            scale: 5,
            edge_factor: 2,
            seed: 1,
            tiles: 2,
            supersteps: 1,
        };
        assert!(w.build(&WorkerPool::new(1)).is_err());
    }
}
