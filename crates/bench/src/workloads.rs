//! Shared workload setup for experiments and Criterion benches.

use graphh_cluster::ClusterConfig;
use graphh_core::{Executor, GraphHConfig, GraphHEngine, RunResult};
use graphh_graph::datasets::{Dataset, DatasetSpec};
use graphh_graph::Graph;
use graphh_partition::{PartitionedGraph, Spe, SpeConfig};
use std::sync::Arc;

/// Seed every experiment uses so results are reproducible run-to-run.
pub const EXPERIMENT_SEED: u64 = 2017;

/// Extra down-scaling applied on top of [`Dataset::default_spec`] so the full report
/// (4 datasets × 4 cluster sizes × several systems) completes in seconds. The factor
/// is recorded in EXPERIMENTS.md next to every result.
pub const REPORT_EXTRA_SCALE: f64 = 4.0;

/// The dataset stand-in used by the experiment harness.
pub fn experiment_spec(dataset: Dataset) -> DatasetSpec {
    let base = dataset.default_spec();
    DatasetSpec::scaled(dataset, base.scale_divisor * REPORT_EXTRA_SCALE)
}

/// Generate the experiment stand-in graph for a dataset.
pub fn experiment_graph(dataset: Dataset) -> Graph {
    experiment_spec(dataset).generate(EXPERIMENT_SEED)
}

/// Partition a graph with roughly 4 tiles per server of the largest cluster (36
/// tiles), so every cluster size from 1 to 9 servers has work to spread.
pub fn partition_for_experiments(graph: &Graph, name: &str) -> PartitionedGraph {
    Spe::partition(graph, &SpeConfig::with_tile_count(name, graph, 36))
        .expect("partitioning experiment graphs cannot fail")
}

/// Run GraphH with the paper-default configuration (sequential reference
/// executor).
pub fn run_graphh(
    partitioned: &PartitionedGraph,
    program: &dyn graphh_core::GabProgram,
    servers: u32,
) -> RunResult {
    GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(
        servers,
    )))
    .run(partitioned, program)
    .expect("GraphH run failed")
}

/// Run GraphH with the paper-default configuration on an explicit executor.
pub fn run_graphh_with(
    partitioned: &PartitionedGraph,
    program: &dyn graphh_core::GabProgram,
    servers: u32,
    executor: Arc<dyn Executor>,
) -> RunResult {
    run_graphh_config(
        partitioned,
        program,
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(servers)),
        executor,
    )
}

/// Run GraphH with an explicit configuration and executor (the
/// threads-per-server bench axis sets `config.threads_per_server`).
pub fn run_graphh_config(
    partitioned: &PartitionedGraph,
    program: &dyn graphh_core::GabProgram,
    config: GraphHConfig,
    executor: Arc<dyn Executor>,
) -> RunResult {
    GraphHEngine::with_executor(config, executor)
        .run(partitioned, program)
        .expect("GraphH run failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_graphs_are_reproducible_and_modest() {
        let a = experiment_graph(Dataset::Twitter2010);
        let b = experiment_graph(Dataset::Twitter2010);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.num_edges() < 300_000, "keep the harness fast");
        assert!(a.num_edges() > 10_000, "keep the harness meaningful");
    }

    #[test]
    fn partitioning_gives_enough_tiles_for_nine_servers() {
        let g = experiment_graph(Dataset::Uk2007);
        let p = partition_for_experiments(&g, "uk-2007");
        assert!(p.num_tiles() >= 18);
    }
}
