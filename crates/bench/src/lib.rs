//! # graphh-bench
//!
//! The experiment harness: one function per table / figure of the paper's evaluation
//! (see DESIGN.md §4 for the index). Each function runs the relevant engines on the
//! scaled-down dataset stand-ins, and returns the rows/series the paper reports as a
//! formatted text block. The `report` binary prints them (that output is what
//! EXPERIMENTS.md records); the Criterion benches time the same workloads.

pub mod experiments;
pub mod multiprocess;
pub mod trace_check;
pub mod workloads;

pub use experiments::*;
pub use multiprocess::*;
pub use trace_check::*;
pub use workloads::*;
