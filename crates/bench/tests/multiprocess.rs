//! Multi-process determinism: launch real `graphh-node` OS processes over
//! loopback TCP and pin their replicas bit-identical to each other *and* to
//! the in-process sequential reference executor — for PageRank, SSSP, WCC and
//! BFS (plain and direction-optimizing), over **both** TCP planes
//! (`--plane socket` and `--plane poll`).
//!
//! This is the strongest statement the transport refactor makes: the same
//! superstep loop, wire codec and frame protocol, with the simulated servers
//! living in separate address spaces — whether driven by blocking reader
//! threads or a single readiness loop — produces byte-for-byte the values of
//! the single-threaded reference.

use graphh_bench::multiprocess::{decode_values, NodeWorkload};
use graphh_cluster::ClusterConfig;
use graphh_core::{GraphHConfig, GraphHEngine, SequentialExecutor};
use graphh_pool::WorkerPool;
use std::net::TcpListener;
use std::process::{Child, Command};
use std::sync::Arc;

const SERVERS: u32 = 2;

fn free_loopback_ports(n: usize) -> Vec<u16> {
    // Bind ephemeral listeners to reserve distinct ports, then release them
    // for the node processes. The tiny reuse race is retried by the caller.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn spawn_node(
    workload: &NodeWorkload,
    plane: &str,
    extra_args: &[&str],
    id: u32,
    ports: &[u16],
    out: &std::path::Path,
) -> Child {
    let peers = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_graphh-node"));
    for arg in &workload.program_args {
        cmd.args(["--program-arg", arg]);
    }
    cmd.args(extra_args);
    cmd.args([
        "--id",
        &id.to_string(),
        "--servers",
        &SERVERS.to_string(),
        "--listen",
        &format!("127.0.0.1:{}", ports[id as usize]),
        "--plane",
        plane,
        "--peers",
        &peers,
        "--program",
        &workload.program,
        "--scale",
        &workload.scale.to_string(),
        "--edge-factor",
        &workload.edge_factor.to_string(),
        "--seed",
        &workload.seed.to_string(),
        "--tiles",
        &workload.tiles.to_string(),
        "--supersteps",
        &workload.supersteps.to_string(),
        "--establish-timeout-secs",
        "30",
        "--out",
        &out.display().to_string(),
    ])
    .spawn()
    .expect("spawn graphh-node")
}

/// Run the cluster once; `Err` when any node exits nonzero (e.g. it lost the
/// port-reservation race) so the caller can retry with fresh ports.
fn try_cluster_run(
    workload: &NodeWorkload,
    plane: &str,
    extra_args: &[&str],
    attempt: u32,
) -> Result<Vec<Vec<f64>>, String> {
    let dir = std::env::temp_dir();
    let outs: Vec<std::path::PathBuf> = (0..SERVERS)
        .map(|id| {
            dir.join(format!(
                "graphh-mp-{}-{}-{plane}-a{attempt}-s{id}.bin",
                std::process::id(),
                workload.program
            ))
        })
        .collect();
    let ports = free_loopback_ports(SERVERS as usize);
    let children: Vec<Child> = (0..SERVERS)
        .map(|id| spawn_node(workload, plane, extra_args, id, &ports, &outs[id as usize]))
        .collect();
    let mut ok = true;
    for mut child in children {
        ok &= child.wait().expect("wait for graphh-node").success();
    }
    if !ok {
        return Err("a graphh-node process exited nonzero".into());
    }
    let values = outs
        .iter()
        .map(|path| {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path:?}: {e}"))?;
            let _ = std::fs::remove_file(path);
            decode_values(&bytes)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(values)
}

fn assert_cluster_matches_sequential(workload: NodeWorkload, plane: &str) {
    assert_cluster_matches_sequential_with_args(workload, plane, &[]);
}

/// [`assert_cluster_matches_sequential`] with extra `graphh-node` CLI flags
/// (e.g. `--compressor zlib-1`). The sequential reference keeps the default
/// config: config knobs passed this way must never change decoded values.
fn assert_cluster_matches_sequential_with_args(
    workload: NodeWorkload,
    plane: &str,
    extra_args: &[&str],
) {
    // Retry a couple of times: the free-port reservation is inherently racy
    // on a shared machine, and a stolen port makes a node exit nonzero.
    let mut replicas = None;
    for attempt in 0..3 {
        match try_cluster_run(&workload, plane, extra_args, attempt) {
            Ok(values) => {
                replicas = Some(values);
                break;
            }
            Err(e) if attempt < 2 => eprintln!("cluster attempt {attempt} failed ({e}); retrying"),
            Err(e) => panic!("multi-process cluster never came up: {e}"),
        }
    }
    let replicas = replicas.unwrap();

    let pool = WorkerPool::with_host_parallelism();
    let (partitioned, program) = workload.build(&pool).expect("reference workload");
    let reference = GraphHEngine::with_executor(
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS)),
        Arc::new(SequentialExecutor::new()),
    )
    .run(&partitioned, program.as_ref())
    .expect("sequential reference run");

    for (sid, values) in replicas.iter().enumerate() {
        assert_eq!(
            values.len(),
            reference.values.len(),
            "{}: server {sid} value count",
            workload.program
        );
        for (v, (x, y)) in values.iter().zip(&reference.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{} over {plane}: server {sid} vertex {v} diverged across processes ({x} vs {y})",
                workload.program
            );
        }
    }
}

fn workload(program: &str) -> NodeWorkload {
    NodeWorkload {
        program: program.into(),
        program_args: Vec::new(),
        scale: 7,
        edge_factor: 5,
        seed: 2017,
        tiles: 7,
        supersteps: 8,
    }
}

#[test]
fn two_process_tcp_pagerank_matches_sequential() {
    assert_cluster_matches_sequential(workload("pagerank"), "socket");
}

#[test]
fn two_process_tcp_sssp_matches_sequential() {
    assert_cluster_matches_sequential(workload("sssp"), "socket");
}

#[test]
fn two_process_tcp_wcc_matches_sequential() {
    assert_cluster_matches_sequential(workload("wcc"), "socket");
}

// The same clusters over the event-driven plane: real separate processes,
// each with exactly one event-loop thread driving its peer sockets.

#[test]
fn two_process_poll_pagerank_matches_sequential() {
    assert_cluster_matches_sequential(workload("pagerank"), "poll");
}

#[test]
fn two_process_poll_sssp_matches_sequential() {
    assert_cluster_matches_sequential(workload("sssp"), "poll");
}

#[test]
fn two_process_poll_wcc_matches_sequential() {
    assert_cluster_matches_sequential(workload("wcc"), "poll");
}

// The formerly orphaned BFS kernel, end-to-end through the registry and the
// `--program` flag — and its direction-optimizing variant with thresholds
// passed as `--program-arg K=V`, so the push path and the per-superstep
// direction decision run inside real separate processes.

#[test]
fn two_process_tcp_bfs_matches_sequential() {
    assert_cluster_matches_sequential(workload("bfs"), "socket");
}

#[test]
fn two_process_poll_bfs_matches_sequential() {
    assert_cluster_matches_sequential(workload("bfs"), "poll");
}

#[test]
fn two_process_poll_dopt_bfs_switches_direction_and_matches_sequential() {
    let mut w = workload("bfs-dopt");
    // α=β=2: the auto heuristic genuinely switches to push on this small
    // graph, and every process must switch at the same superstep to stay
    // bit-identical to the (pull-resolved) sequential reference.
    w.program_args = vec!["alpha=2".into(), "beta=2".into()];
    assert_cluster_matches_sequential(w, "poll");
}

// The compressed broadcast path end-to-end across real processes: every wire
// message is zlib-compressed through the persistent per-lane compressor
// scratch and decompressed on the receiving node — decoded values must still
// be bit-identical to the sequential reference (which runs the default
// config: compression never changes values, only wire bytes).

#[test]
fn two_process_poll_compressed_pagerank_matches_sequential() {
    assert_cluster_matches_sequential_with_args(
        workload("pagerank"),
        "poll",
        &["--compressor", "zlib-1"],
    );
}
