//! The multiprocess chaos driver: a real 3-process resilient cluster must
//! survive a `SIGKILL` mid-run.
//!
//! Three `graphh-node` OS processes run PageRank over loopback TCP with the
//! resilient wire protocol and superstep-granular `GHHC` checkpoints. Once
//! the victim node has written its first checkpoint (proof the run is past
//! establishment and mid-superstep-loop), the driver `kill -9`s it — no
//! goodbye, no flush, exactly what a crashed machine looks like to its peers
//! — and then restarts the same command line. The restarted process loads
//! its checkpoint, redials with the `GHHR` resume handshake, peers replay
//! the frames it lost, and the cluster finishes the run.
//!
//! The demanded outcome is the strongest one: the final `GHHV` value files
//! of all three servers must be byte-identical to each other *and* to the
//! in-process sequential reference executor — not "recovered", but exactly
//! the bits an unfaulted run produces.

use graphh_bench::multiprocess::{decode_values, NodeWorkload};
use graphh_cluster::ClusterConfig;
use graphh_core::{GraphHConfig, GraphHEngine, SequentialExecutor};
use graphh_pool::WorkerPool;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SERVERS: u32 = 3;
/// The node the driver kills and restarts. Highest id: it dials every peer
/// on restart, so the rejoin exercises the dial side of the resume
/// handshake against both survivors at once.
const VICTIM: u32 = 2;

fn free_loopback_ports(n: usize) -> Vec<u16> {
    // Bind ephemeral listeners to reserve distinct ports, then release them
    // for the node processes. The tiny reuse race is retried by the caller.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn workload() -> NodeWorkload {
    NodeWorkload {
        program: "pagerank".into(),
        program_args: Vec::new(),
        scale: 7,
        edge_factor: 5,
        seed: 2017,
        tiles: 7,
        supersteps: 8,
    }
}

fn spawn_node(
    workload: &NodeWorkload,
    id: u32,
    ports: &[u16],
    ckpt_dir: &Path,
    out: &Path,
) -> Child {
    let peers = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");
    Command::new(env!("CARGO_BIN_EXE_graphh-node"))
        .args([
            "--id",
            &id.to_string(),
            "--servers",
            &SERVERS.to_string(),
            "--listen",
            &format!("127.0.0.1:{}", ports[id as usize]),
            "--plane",
            "poll",
            "--peers",
            &peers,
            "--program",
            &workload.program,
            "--scale",
            &workload.scale.to_string(),
            "--edge-factor",
            &workload.edge_factor.to_string(),
            "--seed",
            &workload.seed.to_string(),
            "--tiles",
            &workload.tiles.to_string(),
            "--supersteps",
            &workload.supersteps.to_string(),
            "--establish-timeout-secs",
            "60",
            "--resilient",
            "--checkpoint-dir",
            &ckpt_dir.display().to_string(),
            "--checkpoint-every",
            "1",
            "--reconnect-deadline-secs",
            "60",
            // Widen each superstep so the kill reliably lands mid-run.
            "--superstep-delay-ms",
            "120",
            "--out",
            &out.display().to_string(),
        ])
        .spawn()
        .expect("spawn graphh-node")
}

/// Run the cluster once with a mid-run `SIGKILL` + restart of the victim;
/// `Err` when any node exits nonzero (e.g. it lost the port-reservation
/// race) so the caller can retry with fresh ports.
fn try_chaos_run(attempt: u32) -> Result<Vec<Vec<u8>>, String> {
    let w = workload();
    let tag = format!("graphh-chaos-{}-a{attempt}", std::process::id());
    let dir = std::env::temp_dir();
    let ckpt_dir = dir.join(format!("{tag}-ckpt"));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| format!("create {ckpt_dir:?}: {e}"))?;
    let outs: Vec<PathBuf> = (0..SERVERS)
        .map(|id| dir.join(format!("{tag}-s{id}.bin")))
        .collect();
    let ports = free_loopback_ports(SERVERS as usize);
    let mut children: Vec<Child> = (0..SERVERS)
        .map(|id| spawn_node(&w, id, &ports, &ckpt_dir, &outs[id as usize]))
        .collect();

    // The victim's first checkpoint is the signal that the cluster is
    // established and the superstep loop is live — the window where a crash
    // actually costs in-flight state.
    let victim_ckpt = ckpt_dir.join(format!("ckpt-s{VICTIM}.ghhc"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !victim_ckpt.exists() {
        if Instant::now() >= deadline {
            for child in &mut children {
                let _ = child.kill();
            }
            return Err("victim never wrote its first checkpoint".into());
        }
        for child in &mut children {
            if let Ok(Some(status)) = child.try_wait() {
                for child in &mut children {
                    let _ = child.kill();
                }
                return Err(format!("a node exited early ({status}) before the kill"));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Land inside a superstep, not on the checkpoint boundary just crossed.
    std::thread::sleep(Duration::from_millis(60));

    // kill -9: no goodbye, no flush — a crash, not an exit.
    children[VICTIM as usize]
        .kill()
        .map_err(|e| format!("kill victim: {e}"))?;
    let _ = children[VICTIM as usize].wait();

    // Restart the identical command line: the node auto-loads its checkpoint
    // and rejoins with the resume handshake while peers replay the delta.
    children[VICTIM as usize] = spawn_node(&w, VICTIM, &ports, &ckpt_dir, &outs[VICTIM as usize]);

    let mut ok = true;
    for child in &mut children {
        ok &= child.wait().expect("wait for graphh-node").success();
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    if !ok {
        for path in &outs {
            let _ = std::fs::remove_file(path);
        }
        return Err("a graphh-node process exited nonzero".into());
    }
    outs.iter()
        .map(|path| {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path:?}: {e}"))?;
            let _ = std::fs::remove_file(path);
            Ok(bytes)
        })
        .collect()
}

/// Spawn one node that bootstraps from a membership seed instead of a
/// static `--peers` table. `listen_port` is the node's own port — for the
/// replacement incarnation it is deliberately *different* from the port the
/// dead process occupied.
fn spawn_node_seeded(
    workload: &NodeWorkload,
    id: u32,
    listen_port: u16,
    seed_port: u16,
    ckpt_dir: &Path,
    out: &Path,
) -> Child {
    Command::new(env!("CARGO_BIN_EXE_graphh-node"))
        .args([
            "--id",
            &id.to_string(),
            "--servers",
            &SERVERS.to_string(),
            "--listen",
            &format!("127.0.0.1:{listen_port}"),
            "--plane",
            "poll",
            "--seed",
            &format!("127.0.0.1:{seed_port}"),
            "--program",
            &workload.program,
            "--scale",
            &workload.scale.to_string(),
            "--edge-factor",
            &workload.edge_factor.to_string(),
            "--seed",
            &workload.seed.to_string(),
            "--tiles",
            &workload.tiles.to_string(),
            "--supersteps",
            &workload.supersteps.to_string(),
            "--establish-timeout-secs",
            "60",
            "--resilient",
            "--checkpoint-dir",
            &ckpt_dir.display().to_string(),
            "--checkpoint-every",
            "1",
            "--reconnect-deadline-secs",
            "60",
            "--superstep-delay-ms",
            "120",
            "--out",
            &out.display().to_string(),
        ])
        .spawn()
        .expect("spawn graphh-node (seeded)")
}

/// The membership run: cluster bootstrapped from seeds only, victim killed
/// with `SIGKILL` and restarted on a **different port**. Node 1 is the victim
/// so both redial directions are exercised: the replacement dials node 0
/// itself, while node 2 must *learn the new address through gossip* (node 0
/// serves the adoption announce, the book delta rides the ack cadence to
/// node 2, and node 2's reconnect loop re-consults the book before redialing).
fn try_membership_run(attempt: u32) -> Result<Vec<Vec<u8>>, String> {
    const VICTIM: u32 = 1;
    let w = workload();
    let tag = format!("graphh-member-{}-a{attempt}", std::process::id());
    let dir = std::env::temp_dir();
    let ckpt_dir = dir.join(format!("{tag}-ckpt"));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| format!("create {ckpt_dir:?}: {e}"))?;
    let outs: Vec<PathBuf> = (0..SERVERS)
        .map(|id| dir.join(format!("{tag}-s{id}.bin")))
        .collect();
    // One extra port: the replacement incarnation's fresh address.
    let ports = free_loopback_ports(SERVERS as usize + 1);
    let seed_port = ports[0]; // node 0 doubles as the seed node
    let mut children: Vec<Child> = (0..SERVERS)
        .map(|id| {
            spawn_node_seeded(
                &w,
                id,
                ports[id as usize],
                seed_port,
                &ckpt_dir,
                &outs[id as usize],
            )
        })
        .collect();

    let victim_ckpt = ckpt_dir.join(format!("ckpt-s{VICTIM}.ghhc"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !victim_ckpt.exists() {
        if Instant::now() >= deadline {
            for child in &mut children {
                let _ = child.kill();
            }
            return Err("victim never wrote its first checkpoint".into());
        }
        for child in &mut children {
            if let Ok(Some(status)) = child.try_wait() {
                for child in &mut children {
                    let _ = child.kill();
                }
                return Err(format!("a node exited early ({status}) before the kill"));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(60));

    children[VICTIM as usize]
        .kill()
        .map_err(|e| format!("kill victim: {e}"))?;
    let _ = children[VICTIM as usize].wait();

    // The replacement: same server id, same checkpoint directory, same seed —
    // but a brand-new listen port. Nobody tells the survivors; the address
    // book has to carry the adoption.
    children[VICTIM as usize] = spawn_node_seeded(
        &w,
        VICTIM,
        ports[SERVERS as usize],
        seed_port,
        &ckpt_dir,
        &outs[VICTIM as usize],
    );

    let mut ok = true;
    for child in &mut children {
        ok &= child.wait().expect("wait for graphh-node").success();
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    if !ok {
        for path in &outs {
            let _ = std::fs::remove_file(path);
        }
        return Err("a graphh-node process exited nonzero".into());
    }
    outs.iter()
        .map(|path| {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path:?}: {e}"))?;
            let _ = std::fs::remove_file(path);
            Ok(bytes)
        })
        .collect()
}

#[test]
fn seed_discovered_cluster_adopts_replacement_at_new_port_byte_for_byte() {
    let mut raw = None;
    for attempt in 0..3 {
        match try_membership_run(attempt) {
            Ok(files) => {
                raw = Some(files);
                break;
            }
            Err(e) if attempt < 2 => {
                eprintln!("membership attempt {attempt} failed ({e}); retrying")
            }
            Err(e) => panic!("membership cluster never completed: {e}"),
        }
    }
    let raw = raw.unwrap();

    for (sid, bytes) in raw.iter().enumerate().skip(1) {
        assert_eq!(
            bytes, &raw[0],
            "server {sid}'s GHHV file differs from server 0's after the replacement"
        );
    }

    let pool = WorkerPool::with_host_parallelism();
    let (partitioned, program) = workload().build(&pool).expect("reference workload");
    let reference = GraphHEngine::with_executor(
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS)),
        Arc::new(SequentialExecutor::new()),
    )
    .run(&partitioned, program.as_ref())
    .expect("sequential reference run");

    for (sid, bytes) in raw.iter().enumerate() {
        let values = decode_values(bytes).expect("decode GHHV");
        assert_eq!(values.len(), reference.values.len(), "server {sid}");
        for (v, (x, y)) in values.iter().zip(&reference.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "server {sid} vertex {v} diverged after replacement at a new port ({x} vs {y})"
            );
        }
    }
}

#[test]
fn kill9_mid_run_restart_matches_sequential_byte_for_byte() {
    // Retry a couple of times: the free-port reservation is inherently racy
    // on a shared machine, and a stolen port makes a node exit nonzero.
    let mut raw = None;
    for attempt in 0..3 {
        match try_chaos_run(attempt) {
            Ok(files) => {
                raw = Some(files);
                break;
            }
            Err(e) if attempt < 2 => eprintln!("chaos attempt {attempt} failed ({e}); retrying"),
            Err(e) => panic!("chaos cluster never completed: {e}"),
        }
    }
    let raw = raw.unwrap();

    // The GHHV files themselves must be byte-identical across all replicas —
    // the kill and replay must not perturb even the encoding.
    for (sid, bytes) in raw.iter().enumerate().skip(1) {
        assert_eq!(
            bytes, &raw[0],
            "server {sid}'s GHHV file differs from server 0's after the kill"
        );
    }

    let pool = WorkerPool::with_host_parallelism();
    let (partitioned, program) = workload().build(&pool).expect("reference workload");
    let reference = GraphHEngine::with_executor(
        GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS)),
        Arc::new(SequentialExecutor::new()),
    )
    .run(&partitioned, program.as_ref())
    .expect("sequential reference run");

    for (sid, bytes) in raw.iter().enumerate() {
        let values = decode_values(bytes).expect("decode GHHV");
        assert_eq!(values.len(), reference.values.len(), "server {sid}");
        for (v, (x, y)) in values.iter().zip(&reference.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "server {sid} vertex {v} diverged after kill -9 + restart ({x} vs {y})"
            );
        }
    }
}
