//! A real traced run must leave behind loadable observability artifacts.
//!
//! Launches a 2-process `graphh-node` cluster over the event-driven poll
//! plane with `--trace-out` and `--metrics-out`, then validates every emitted
//! file against the schemas in `docs/OBSERVABILITY.md` using the repo's own
//! JSON parser (`graphh_obs::JsonValue`) — no external tools. Also asserts
//! the trace actually contains the superstep phase spans and that the poll
//! plane's counters made it into the metrics snapshot.
//!
//! The `ci_*` tests re-run the same validators on files named by the
//! `GRAPHH_TRACE_JSON` / `GRAPHH_METRICS_JSON` environment variables; the CI
//! smoke job points them at the artifacts of its own traced node before
//! uploading them. Without the variables they pass trivially.

use graphh_bench::trace_check::{validate_chrome_trace, validate_node_metrics};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command};

const SERVERS: u32 = 2;

fn free_loopback_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

struct NodeArtifacts {
    trace: PathBuf,
    metrics: PathBuf,
}

fn spawn_traced_node(id: u32, ports: &[u16], artifacts: &NodeArtifacts) -> Child {
    let peers = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");
    Command::new(env!("CARGO_BIN_EXE_graphh-node"))
        .args([
            "--id",
            &id.to_string(),
            "--servers",
            &SERVERS.to_string(),
            "--listen",
            &format!("127.0.0.1:{}", ports[id as usize]),
            "--plane",
            "poll",
            "--peers",
            &peers,
            "--program",
            "pagerank",
            "--scale",
            "7",
            "--edge-factor",
            "5",
            "--seed",
            "2017",
            "--tiles",
            "7",
            "--supersteps",
            "6",
            "--establish-timeout-secs",
            "30",
            "--trace-out",
            &artifacts.trace.display().to_string(),
            "--metrics-out",
            &artifacts.metrics.display().to_string(),
        ])
        .spawn()
        .expect("spawn graphh-node")
}

fn try_traced_cluster(attempt: u32) -> Result<Vec<NodeArtifacts>, String> {
    let dir = std::env::temp_dir();
    let artifacts: Vec<NodeArtifacts> = (0..SERVERS)
        .map(|id| {
            let stem = format!("graphh-trace-{}-a{attempt}-s{id}", std::process::id());
            NodeArtifacts {
                trace: dir.join(format!("{stem}.trace.json")),
                metrics: dir.join(format!("{stem}.metrics.json")),
            }
        })
        .collect();
    let ports = free_loopback_ports(SERVERS as usize);
    let children: Vec<Child> = (0..SERVERS)
        .map(|id| spawn_traced_node(id, &ports, &artifacts[id as usize]))
        .collect();
    let mut ok = true;
    for mut child in children {
        ok &= child.wait().expect("wait for graphh-node").success();
    }
    if !ok {
        return Err("a graphh-node process exited nonzero".into());
    }
    Ok(artifacts)
}

#[test]
fn traced_poll_cluster_emits_valid_trace_and_metrics_files() {
    // Retry the port-reservation race exactly as the multiprocess suite does.
    let mut artifacts = None;
    for attempt in 0..3 {
        match try_traced_cluster(attempt) {
            Ok(a) => {
                artifacts = Some(a);
                break;
            }
            Err(e) if attempt < 2 => eprintln!("cluster attempt {attempt} failed ({e}); retrying"),
            Err(e) => panic!("traced multi-process cluster never came up: {e}"),
        }
    }

    for (sid, node) in artifacts.unwrap().iter().enumerate() {
        let trace = std::fs::read_to_string(&node.trace)
            .unwrap_or_else(|e| panic!("read {:?}: {e}", node.trace));
        let stats = validate_chrome_trace(&trace)
            .unwrap_or_else(|e| panic!("server {sid} trace invalid: {e}"));
        // The full worker phase taxonomy (docs/OBSERVABILITY.md §2) must be
        // present: this run crossed a real TCP plane, so the plane-flush /
        // collect-decode / barrier-wait phases are all exercised.
        for phase in [
            "tile-compute",
            "encode-publish",
            "plane-flush",
            "collect-decode",
            "apply",
            "barrier-wait",
        ] {
            assert!(
                stats.names.iter().any(|n| n == phase),
                "server {sid} trace is missing the {phase} span; has {:?}",
                stats.names
            );
        }
        assert!(stats.names.iter().any(|n| n == "server-build"));
        assert!(
            stats.superstep_spans >= 6,
            "server {sid}: expected at least one span per superstep"
        );

        let metrics = std::fs::read_to_string(&node.metrics)
            .unwrap_or_else(|e| panic!("read {:?}: {e}", node.metrics));
        let stats = validate_node_metrics(&metrics)
            .unwrap_or_else(|e| panic!("server {sid} metrics invalid: {e}"));
        assert_eq!(stats.server, sid as u64);
        assert_eq!(stats.supersteps_run, 6);
        // The poll plane's transport counters and the storage/cache counters
        // must appear in the snapshot of a poll-plane run.
        for prefix in ["poll.", "storage.", "cache.", "buffer_pool."] {
            assert!(
                stats.counter_names.iter().any(|n| n.starts_with(prefix)),
                "server {sid} metrics have no {prefix}* counter; has {:?}",
                stats.counter_names
            );
        }

        let _ = std::fs::remove_file(&node.trace);
        let _ = std::fs::remove_file(&node.metrics);
    }
}

/// CI hook: validate an externally produced trace file (no-op when the
/// variable is unset, so plain `cargo test` is unaffected).
#[test]
fn ci_trace_file_is_valid() {
    if let Ok(path) = std::env::var("GRAPHH_TRACE_JSON") {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read GRAPHH_TRACE_JSON={path}: {e}"));
        let stats = validate_chrome_trace(&json).unwrap_or_else(|e| panic!("{path} invalid: {e}"));
        assert!(stats.superstep_spans > 0, "{path} has no superstep spans");
    }
}

/// CI hook: validate an externally produced metrics file (no-op when the
/// variable is unset).
#[test]
fn ci_metrics_file_is_valid() {
    if let Ok(path) = std::env::var("GRAPHH_METRICS_JSON") {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read GRAPHH_METRICS_JSON={path}: {e}"));
        let stats = validate_node_metrics(&json).unwrap_or_else(|e| panic!("{path} invalid: {e}"));
        assert!(
            !stats.counter_names.is_empty(),
            "{path} has an empty counter snapshot"
        );
    }
}
