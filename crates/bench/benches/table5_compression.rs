//! Criterion bench for Table V: tile compression codecs.
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_bench::{experiment_graph, partition_for_experiments};
use graphh_compress::Codec;
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Uk2007);
    let p = partition_for_experiments(&g, "uk-2007");
    let payload = p.tiles[0].to_bytes();
    let mut group = c.benchmark_group("table5_compression");
    group.sample_size(20);
    for codec in [
        Codec::Snappy,
        Codec::Zlib1,
        Codec::Zlib3,
        Codec::VarintDelta,
    ] {
        group.bench_function(format!("compress/{}", codec.name()), |b| {
            b.iter(|| codec.compress(&payload))
        });
        let compressed = codec.compress(&payload);
        group.bench_function(format!("decompress/{}", codec.name()), |b| {
            b.iter(|| codec.decompress(&compressed).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
