//! Criterion bench for the design-choice ablations (Bloom filter, tile size).
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_bench::{experiment_graph, partition_for_experiments};
use graphh_cluster::ClusterConfig;
use graphh_core::{GraphHConfig, GraphHEngine, Sssp};
use graphh_graph::datasets::Dataset;
use graphh_partition::{Spe, SpeConfig};

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Twitter2010);
    let p = partition_for_experiments(&g, "twitter-2010");
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("sssp_bloom_on", |b| {
        b.iter(|| {
            let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
            GraphHEngine::new(cfg).run(&p, &Sssp::new(source)).unwrap()
        })
    });
    group.bench_function("sssp_bloom_off", |b| {
        b.iter(|| {
            let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
            cfg.use_bloom_filter = false;
            GraphHEngine::new(cfg).run(&p, &Sssp::new(source)).unwrap()
        })
    });
    for tiles in [8u32, 64] {
        group.bench_function(format!("partition_{tiles}_tiles"), |b| {
            b.iter(|| Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, tiles)).unwrap())
        });
    }
    // Executor axis: the same PageRank workload on the sequential reference
    // loop vs the threaded worker runtime (one OS thread per server).
    for (name, threaded) in [
        ("pagerank_sequential_4srv", false),
        ("pagerank_threaded_4srv", true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(4));
                let executor: std::sync::Arc<dyn graphh_core::Executor> = if threaded {
                    std::sync::Arc::new(graphh_runtime::ThreadedExecutor::new())
                } else {
                    std::sync::Arc::new(graphh_core::SequentialExecutor::new())
                };
                GraphHEngine::with_executor(cfg, executor)
                    .run(&p, &graphh_core::PageRank::new(5))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
