//! Criterion bench for Table I: dataset stand-in generation + partitioning.
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_bench::{experiment_graph, partition_for_experiments};
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_twitter_standin", |b| {
        b.iter(|| experiment_graph(Dataset::Twitter2010))
    });
    let g = experiment_graph(Dataset::Twitter2010);
    group.bench_function("partition_twitter_standin", |b| {
        b.iter(|| partition_for_experiments(&g, "twitter-2010"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
