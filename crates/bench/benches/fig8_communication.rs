//! Criterion bench for Figure 8: broadcast encodings and message compressors.
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_bench::{experiment_graph, partition_for_experiments};
use graphh_cluster::{ClusterConfig, CommunicationMode};
use graphh_compress::Codec;
use graphh_core::{GraphHConfig, GraphHEngine, PageRank};
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Uk2007);
    let p = partition_for_experiments(&g, "uk-2007");
    let mut group = c.benchmark_group("fig8_communication");
    group.sample_size(10);
    let configs: [(&str, CommunicationMode, Option<Codec>); 4] = [
        ("dense_raw", CommunicationMode::Dense, None),
        ("sparse_raw", CommunicationMode::Sparse, None),
        ("hybrid_raw", CommunicationMode::default(), None),
        (
            "hybrid_snappy",
            CommunicationMode::default(),
            Some(Codec::Snappy),
        ),
    ];
    for (name, mode, comp) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(9));
                cfg.communication = mode;
                cfg.message_compressor = comp;
                GraphHEngine::new(cfg).run(&p, &PageRank::new(3)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
