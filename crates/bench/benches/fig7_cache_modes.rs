//! Criterion bench for Figure 7: PageRank under each edge-cache mode.
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_bench::{experiment_graph, partition_for_experiments};
use graphh_cache::CacheMode;
use graphh_cluster::ClusterConfig;
use graphh_compress::Codec;
use graphh_core::{GraphHConfig, GraphHEngine, PageRank};
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Eu2015);
    let p = partition_for_experiments(&g, "eu-2015");
    let capacity = p.total_tile_bytes() / 3 * 2 / 5;
    let mut group = c.benchmark_group("fig7_cache_modes");
    group.sample_size(10);
    for mode in 1u8..=4 {
        let codec = Codec::from_cache_mode(mode).unwrap();
        group.bench_function(format!("mode{mode}_{}", codec.name()), |b| {
            b.iter(|| {
                let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
                cfg.cache_mode = CacheMode::Fixed(codec);
                cfg.cache_capacity = Some(capacity);
                GraphHEngine::new(cfg).run(&p, &PageRank::new(3)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
