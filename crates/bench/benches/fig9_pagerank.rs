//! Criterion bench for Figure 9: one PageRank run per system (Twitter stand-in, 3 servers).
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_baselines::program::PageRankMsg;
use graphh_baselines::{
    ChaosConfig, ChaosEngine, GasConfig, GasEngine, PregelConfig, PregelEngine,
};
use graphh_bench::{experiment_graph, partition_for_experiments, run_graphh};
use graphh_cluster::ClusterConfig;
use graphh_core::PageRank;
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Twitter2010);
    let p = partition_for_experiments(&g, "twitter-2010");
    let cluster = ClusterConfig::paper_testbed(3);
    let mut group = c.benchmark_group("fig9_pagerank");
    group.sample_size(10);
    group.bench_function("graphh", |b| {
        b.iter(|| run_graphh(&p, &PageRank::new(3), 3))
    });
    group.bench_function("pregel_plus", |b| {
        b.iter(|| {
            PregelEngine::new(PregelConfig::pregel_plus(cluster)).run(&g, &PageRankMsg::new(3))
        })
    });
    group.bench_function("graphd", |b| {
        b.iter(|| PregelEngine::new(PregelConfig::graphd(cluster)).run(&g, &PageRankMsg::new(3)))
    });
    group.bench_function("powergraph", |b| {
        b.iter(|| GasEngine::new(GasConfig::powergraph(cluster)).run(&g, &PageRankMsg::new(3)))
    });
    group.bench_function("chaos", |b| {
        b.iter(|| ChaosEngine::new(ChaosConfig::new(cluster)).run(&g, &PageRankMsg::new(3)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
