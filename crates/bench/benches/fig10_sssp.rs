//! Criterion bench for Figure 10: one SSSP run per system (Twitter stand-in, 3 servers).
use criterion::{criterion_group, criterion_main, Criterion};
use graphh_baselines::program::SsspMsg;
use graphh_baselines::{ChaosConfig, ChaosEngine, PregelConfig, PregelEngine};
use graphh_bench::{experiment_graph, partition_for_experiments, run_graphh};
use graphh_cluster::ClusterConfig;
use graphh_core::Sssp;
use graphh_graph::datasets::Dataset;

fn bench(c: &mut Criterion) {
    let g = experiment_graph(Dataset::Twitter2010);
    let p = partition_for_experiments(&g, "twitter-2010");
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    let cluster = ClusterConfig::paper_testbed(3);
    let mut group = c.benchmark_group("fig10_sssp");
    group.sample_size(10);
    group.bench_function("graphh", |b| {
        b.iter(|| run_graphh(&p, &Sssp::new(source), 3))
    });
    group.bench_function("pregel_plus", |b| {
        b.iter(|| {
            PregelEngine::new(PregelConfig::pregel_plus(cluster)).run(&g, &SsspMsg::new(source))
        })
    });
    group.bench_function("graphd", |b| {
        b.iter(|| PregelEngine::new(PregelConfig::graphd(cluster)).run(&g, &SsspMsg::new(source)))
    });
    group.bench_function("chaos", |b| {
        b.iter(|| ChaosEngine::new(ChaosConfig::new(cluster)).run(&g, &SsspMsg::new(source)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
