//! The counter registry: named atomic `u64` counters and gauges.
//!
//! Registration (name → handle) allocates and takes a lock, so subsystems
//! fetch their [`Counter`] handles once at setup/establish time; the hot path
//! is a relaxed atomic add on a pre-fetched handle — no allocation, no lock,
//! no branch on an "enabled" flag. Counters are therefore always on, like
//! `graphh_storage::IoMeter` already was: the cost is one atomic RMW.
//!
//! The [`global_counters`] registry is what `--metrics-out` snapshots; tests
//! that assert on counter values use deltas (before/after), because the
//! global registry is shared by every run in the process.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A handle on one named counter. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter (relaxed; hot-path safe).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtract `n` (wrapping; used by outstanding-resource gauges whose adds
    /// and subs are strictly paired).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Gauge semantics: overwrite with the latest observation.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Gauge semantics: keep the largest observation (high-water marks).
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set of named counters. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    names: Arc<Mutex<BTreeMap<String, Counter>>>,
}

impl CounterRegistry {
    /// An empty registry (tests; the runtime uses [`global_counters`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// Allocates on first registration — call at setup time and keep the
    /// handle; never call on a per-message path.
    pub fn counter(&self, name: &str) -> Counter {
        let mut names = self.names.lock().expect("counter registry poisoned");
        if let Some(counter) = names.get(name) {
            return counter.clone();
        }
        let counter = Counter::default();
        names.insert(name.to_string(), counter.clone());
        counter
    }

    /// All counters with their current values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.names
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect()
    }

    /// Render the current snapshot as a JSON object (sorted keys).
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write;
        let snapshot = self.snapshot();
        let mut out = String::from("{");
        for (i, (name, value)) in snapshot.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {value}", crate::json::escape(name));
        }
        out.push('}');
        out
    }
}

/// The process-wide registry every runtime subsystem publishes into.
pub fn global_counters() -> &'static CounterRegistry {
    static GLOBAL: OnceLock<CounterRegistry> = OnceLock::new();
    GLOBAL.get_or_init(CounterRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let registry = CounterRegistry::new();
        let a = registry.counter("x.adds");
        let b = registry.counter("x.adds");
        a.add(3);
        b.incr();
        assert_eq!(registry.counter("x.adds").get(), 4);
    }

    #[test]
    fn gauges_set_and_record_max() {
        let registry = CounterRegistry::new();
        let gauge = registry.counter("queue.bytes");
        gauge.set(100);
        gauge.set(40);
        assert_eq!(gauge.get(), 40);
        let peak = registry.counter("queue.peak");
        peak.record_max(10);
        peak.record_max(90);
        peak.record_max(50);
        assert_eq!(peak.get(), 90);
    }

    #[test]
    fn snapshot_is_sorted_and_json_parses() {
        let registry = CounterRegistry::new();
        registry.counter("b.second").add(2);
        registry.counter("a.first").add(1);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot,
            vec![("a.first".to_string(), 1), ("b.second".to_string(), 2)]
        );
        let json = JsonValue::parse(&registry.snapshot_json()).unwrap();
        assert_eq!(json.get("a.first").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(json.get("b.second").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn concurrent_adds_do_not_lose_counts() {
        let registry = CounterRegistry::new();
        let counter = registry.counter("contended");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
    }
}
