//! Per-thread span recording against one shared monotonic origin.
//!
//! A [`Tracer`] owns the run's time origin and the drained span set; each
//! participating thread checks out a [`SpanRecorder`] that appends finished
//! spans to its own private `Vec` — no locks, no cross-thread traffic on the
//! recording path. The buffers merge into the tracer when a recorder is
//! dropped (or [`SpanRecorder::flush`]ed), which is the only synchronized
//! step and happens once per thread per run, not per span.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span: a named interval on one logical thread's timeline.
///
/// Spans are *complete* intervals (Chrome's `"ph": "X"` events): nesting is
/// implied by containment, so recording needs no begin/end pairing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, e.g. `"tile-compute"` (see `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Category, e.g. `"superstep"`, `"load"`, `"pool"`.
    pub cat: &'static str,
    /// Logical thread lane the span belongs to (see the tid scheme in
    /// `docs/OBSERVABILITY.md` — 0 is the driver, `1 + sid` a server worker).
    pub tid: u32,
    /// Microseconds since the tracer's origin.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Superstep index the span belongs to, if any.
    pub superstep: Option<u32>,
    /// Tile-loop direction of the span ("pull" / "push"), recorded on
    /// compute spans by direction-aware executors; `None` elsewhere.
    pub direction: Option<&'static str>,
}

#[derive(Debug)]
struct TracerShared {
    origin: Instant,
    drained: Mutex<Vec<SpanEvent>>,
}

/// Handle on one run's span collection. Cheap to clone (an `Arc` bump when
/// enabled, nothing when off); [`Tracer::off`] — also the `Default` — records
/// nothing and allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
}

impl Tracer {
    /// An enabled tracer; "now" becomes timestamp zero of the trace.
    pub fn new() -> Self {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                origin: Instant::now(),
                drained: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The disabled tracer: every recorder it hands out is a no-op.
    pub fn off() -> Self {
        Tracer::default()
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Check out a recorder for the logical thread lane `tid`.
    ///
    /// When the tracer is off this performs no allocation — the recorder's
    /// buffer is an empty `Vec` that is never pushed to.
    pub fn thread(&self, tid: u32) -> SpanRecorder {
        SpanRecorder {
            shared: self.shared.clone(),
            tid,
            buf: Vec::new(),
        }
    }

    /// Merge every flushed recorder's spans into one list, sorted for stable
    /// rendering: by lane, then start time, then longest-first so that a
    /// parent span always precedes the spans it contains.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let mut spans = std::mem::take(&mut *shared.drained.lock().expect("tracer poisoned"));
        spans.sort_by(|a, b| {
            (a.tid, a.start_us, std::cmp::Reverse(a.dur_us), a.name).cmp(&(
                b.tid,
                b.start_us,
                std::cmp::Reverse(b.dur_us),
                b.name,
            ))
        });
        spans
    }
}

/// An opaque span start timestamp; obtained from [`SpanRecorder::begin`],
/// consumed by [`SpanRecorder::end`].
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(u64);

/// One thread's private span buffer. Recording appends to a local `Vec`;
/// dropping (or [`flush`](Self::flush)ing) hands the buffer to the tracer.
#[derive(Debug)]
pub struct SpanRecorder {
    shared: Option<Arc<TracerShared>>,
    tid: u32,
    buf: Vec<SpanEvent>,
}

impl SpanRecorder {
    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Read the clock (only when enabled) and return the span's start mark.
    #[inline]
    pub fn begin(&self) -> SpanStart {
        match &self.shared {
            Some(shared) => SpanStart(shared.origin.elapsed().as_micros() as u64),
            None => SpanStart(0),
        }
    }

    /// Finish a span started at `start`.
    #[inline]
    pub fn end(&mut self, start: SpanStart, name: &'static str, cat: &'static str) {
        self.end_inner(start, name, cat, None, None);
    }

    /// Finish a span started at `start`, tagged with its superstep index.
    #[inline]
    pub fn end_superstep(
        &mut self,
        start: SpanStart,
        name: &'static str,
        cat: &'static str,
        superstep: u32,
    ) {
        self.end_inner(start, name, cat, Some(superstep), None);
    }

    /// Finish a span started at `start`, tagged with its superstep index and
    /// tile-loop direction ("pull" / "push"). Like every recorder call, a
    /// no-op reading no clock when the tracer is off.
    #[inline]
    pub fn end_superstep_dir(
        &mut self,
        start: SpanStart,
        name: &'static str,
        cat: &'static str,
        superstep: u32,
        direction: &'static str,
    ) {
        self.end_inner(start, name, cat, Some(superstep), Some(direction));
    }

    fn end_inner(
        &mut self,
        start: SpanStart,
        name: &'static str,
        cat: &'static str,
        superstep: Option<u32>,
        direction: Option<&'static str>,
    ) {
        let Some(shared) = &self.shared else {
            return;
        };
        let now = shared.origin.elapsed().as_micros() as u64;
        self.buf.push(SpanEvent {
            name,
            cat,
            tid: self.tid,
            start_us: start.0,
            dur_us: now.saturating_sub(start.0),
            superstep,
            direction,
        });
    }

    /// Move the buffered spans into the tracer (also runs on drop).
    pub fn flush(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if self.buf.is_empty() {
            return;
        }
        shared
            .drained
            .lock()
            .expect("tracer poisoned")
            .append(&mut self.buf);
    }
}

impl Drop for SpanRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The observability knob an executor takes: which tracer (if any) phase
/// spans are recorded into.
///
/// `Default` is fully off. Keep a clone of the tracer to
/// [`Tracer::drain`] the spans after the run:
///
/// ```
/// use graphh_obs::{TraceConfig, Tracer};
///
/// let tracer = Tracer::new();
/// let config = TraceConfig { tracer: tracer.clone() };
/// assert!(config.tracer.is_enabled());
/// // ... hand `config` to an executor, run, then `tracer.drain()` ...
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Destination for phase spans; [`Tracer::off`] disables tracing.
    pub tracer: Tracer,
}

impl TraceConfig {
    /// An enabled config with a fresh tracer.
    pub fn enabled() -> Self {
        TraceConfig {
            tracer: Tracer::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::off();
        assert!(!tracer.is_enabled());
        let mut rec = tracer.thread(7);
        let s = rec.begin();
        rec.end(s, "phase", "test");
        rec.end_superstep(s, "phase", "test", 3);
        drop(rec);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn nested_spans_sort_parent_first() {
        let tracer = Tracer::new();
        let mut rec = tracer.thread(0);
        let outer = rec.begin();
        // Separate the two starts by more than the µs timestamp resolution:
        // with identical (start, dur) the sort's final name tie-break would
        // order "inner" first and the parent-first assertion below would
        // depend on scheduler timing.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let inner = rec.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.end_superstep(inner, "inner", "test", 0);
        rec.end_superstep(outer, "outer", "test", 0);
        drop(rec);

        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        // Containment: the outer interval covers the inner one...
        let (outer, inner) = (&spans[0], &spans[1]);
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.name, "inner");
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us);
        // ...and the sort puts the parent before the child it contains.
        assert_eq!(outer.superstep, Some(0));
    }

    #[test]
    fn cross_thread_spans_merge_on_one_timeline() {
        let tracer = Tracer::new();
        std::thread::scope(|scope| {
            for tid in 1..=4u32 {
                let tracer = &tracer;
                scope.spawn(move || {
                    let mut rec = tracer.thread(tid);
                    for step in 0..3 {
                        let s = rec.begin();
                        rec.end_superstep(s, "work", "test", step);
                    }
                });
            }
        });
        let spans = tracer.drain();
        assert_eq!(spans.len(), 12);
        // Sorted by lane first; every lane contributed its three spans.
        for tid in 1..=4u32 {
            assert_eq!(spans.iter().filter(|s| s.tid == tid).count(), 3);
        }
        assert!(spans.windows(2).all(|w| w[0].tid <= w[1].tid));
        // All spans share the tracer's origin: timestamps are comparable.
        assert!(spans.iter().all(|s| s.start_us < 10_000_000));
    }

    #[test]
    fn drain_is_destructive_and_flush_is_incremental() {
        let tracer = Tracer::new();
        let mut rec = tracer.thread(0);
        let s = rec.begin();
        rec.end(s, "a", "test");
        rec.flush();
        assert_eq!(tracer.drain().len(), 1);
        let s = rec.begin();
        rec.end(s, "b", "test");
        drop(rec);
        let again = tracer.drain();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].name, "b");
    }
}
