//! # graphh-obs
//!
//! Opt-in wall-clock observability for the GraphH reproduction: phase spans,
//! Chrome-trace export, and an atomic counter registry. `docs/OBSERVABILITY.md`
//! is the normative description of the span taxonomy, the counter catalog and
//! the file formats; this crate is the mechanism.
//!
//! The whole layer is built around one contract: **zero cost when off, never
//! feeding back into computation when on**.
//!
//! * A disabled [`Tracer`] ([`Tracer::off`], the default) is a `None` inside —
//!   [`SpanRecorder::begin`]/[`SpanRecorder::end`] return without reading the
//!   clock or touching memory, and creating a recorder allocates nothing
//!   (`crates/runtime/tests/alloc_count.rs` pins this with a counting
//!   allocator).
//! * Counters are plain relaxed `AtomicU64` adds; registering a counter name
//!   allocates, so handles are created at setup/establish time and only the
//!   atomic add runs on hot paths.
//! * Nothing in this crate is ever *read* by the engines mid-run, so traced
//!   and untraced runs are bit-identical (the determinism suites assert this).
//!
//! ```
//! use graphh_obs::{Tracer, chrome_trace_json};
//!
//! let tracer = Tracer::new();
//! let mut rec = tracer.thread(0);
//! let start = rec.begin();
//! // ... the phase being measured ...
//! rec.end(start, "tile-compute", "superstep");
//! drop(rec); // flushes the thread-local buffer into the tracer
//!
//! let spans = tracer.drain();
//! assert_eq!(spans.len(), 1);
//! let json = chrome_trace_json("example", 1, &spans);
//! assert!(json.contains("\"ph\": \"X\""));
//! ```

pub mod chrome;
pub mod counters;
pub mod json;
pub mod span;

pub use chrome::chrome_trace_json;
pub use counters::{global_counters, Counter, CounterRegistry};
pub use json::JsonValue;
pub use span::{SpanEvent, SpanRecorder, SpanStart, TraceConfig, Tracer};
