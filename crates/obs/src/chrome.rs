//! Chrome trace-event JSON export.
//!
//! Emits the subset of the Trace Event Format that `chrome://tracing` and
//! Perfetto load: one metadata event naming the process, then every span as a
//! *complete* event (`"ph": "X"`, timestamps and durations in microseconds).
//! The file format is documented in `docs/OBSERVABILITY.md` §3.

use crate::json::escape;
use crate::span::SpanEvent;
use std::fmt::Write;

/// Render `spans` as a Chrome trace-event JSON object (`{"traceEvents": [...]}`).
///
/// `process_name` labels the process lane in the viewer; `pid` distinguishes
/// endpoints when traces from several `graphh-node` processes are merged by
/// concatenating their `traceEvents` arrays.
///
/// ```
/// use graphh_obs::{chrome_trace_json, Tracer};
///
/// let tracer = Tracer::new();
/// let mut rec = tracer.thread(1);
/// let s = rec.begin();
/// rec.end_superstep(s, "encode", "superstep", 0);
/// drop(rec);
/// let json = chrome_trace_json("graphh-node-0", 0, &tracer.drain());
/// assert!(json.contains("\"name\": \"encode\""));
/// assert!(json.contains("\"process_name\""));
/// ```
pub fn chrome_trace_json(process_name: &str, pid: u32, spans: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 128);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let _ = write!(
        out,
        "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape(process_name)
    );
    for span in spans {
        out.push_str(",\n");
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": {pid}, \"tid\": {}",
            escape(span.name),
            escape(span.cat),
            span.start_us,
            span.dur_us,
            span.tid,
        );
        match (span.superstep, span.direction) {
            (Some(step), Some(direction)) => {
                let _ = write!(
                    out,
                    ", \"args\": {{\"superstep\": {step}, \"direction\": \"{}\"}}}}",
                    escape(direction)
                );
            }
            (Some(step), None) => {
                let _ = write!(out, ", \"args\": {{\"superstep\": {step}}}}}");
            }
            (None, Some(direction)) => {
                let _ = write!(
                    out,
                    ", \"args\": {{\"direction\": \"{}\"}}}}",
                    escape(direction)
                );
            }
            (None, None) => out.push('}'),
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::span::Tracer;

    #[test]
    fn trace_json_round_trips_through_the_parser() {
        let tracer = Tracer::new();
        let mut rec = tracer.thread(2);
        let s = rec.begin();
        rec.end_superstep(s, "tile-compute", "superstep", 4);
        let s = rec.begin();
        rec.end(s, "prepare", "load");
        drop(rec);

        let json = chrome_trace_json("unit \"test\"", 9, &tracer.drain());
        let value = JsonValue::parse(&json).expect("emitted trace must parse");
        let events = value
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3); // metadata + 2 spans

        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(JsonValue::as_str), Some("M"));
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str),
            Some("unit \"test\"")
        );
        for event in &events[1..] {
            assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert_eq!(event.get("pid").and_then(JsonValue::as_u64), Some(9));
            assert_eq!(event.get("tid").and_then(JsonValue::as_u64), Some(2));
            assert!(event.get("ts").and_then(JsonValue::as_u64).is_some());
            assert!(event.get("dur").and_then(JsonValue::as_u64).is_some());
        }
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("tile-compute"))
            .expect("tile-compute span present");
        assert_eq!(
            compute
                .get("args")
                .and_then(|a| a.get("superstep"))
                .and_then(JsonValue::as_u64),
            Some(4)
        );
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let json = chrome_trace_json("empty", 0, &[]);
        let value = JsonValue::parse(&json).unwrap();
        let events = value
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(events.len(), 1); // just the process_name metadata
    }
}
