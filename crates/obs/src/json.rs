//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser for the validators.
//!
//! The workspace deliberately has no `serde_json`; every JSON file the repo
//! emits is hand-written, and this parser exists so tests can *validate* those
//! files (trace-event JSON, metrics snapshots, `BENCH_runtime.json`) without
//! external tools. It accepts standard JSON — objects, arrays, strings with
//! `\uXXXX` escapes, numbers, booleans, null — and nothing more.

/// Escape `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for our own files.
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let value =
            JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
                .unwrap();
        let a = value.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        let b = value.get("b").unwrap();
        assert_eq!(b.get("c").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(b.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(b.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        let nasty = "quote \" slash \\ newline \n tab \t control \u{1} unicode é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let value = JsonValue::parse(&doc).unwrap();
        assert_eq!(value.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"a\": 1} extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("{'single': 1}").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Number(3.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }
}
