//! # graphh-cluster
//!
//! The simulated cluster substrate all engines run on.
//!
//! The paper's evaluation uses a 9-node testbed (2× Xeon E5-2620, 128 GB RAM, RAID5
//! HDDs, 10 GbE). We do not have that hardware, so — per the substitution policy in
//! DESIGN.md — the engines in this workspace execute their algorithms for real on
//! in-process data and *meter* every byte they move; this crate supplies:
//!
//! * [`config`] — cluster/hardware descriptions, including a preset for the paper's
//!   testbed,
//! * [`metrics`] — per-server, per-superstep counters of work done (edges processed,
//!   disk and network bytes, decompression bytes, cache hits, …),
//! * [`cost`] — the cost model that converts metered work into simulated
//!   per-superstep time under BSP (the slowest server bounds the superstep),
//! * [`network`] — the broadcast message encodings GraphH uses (dense, sparse,
//!   hybrid, optionally compressed) and the metered per-message wire codec
//!   both executors broadcast through,
//! * [`memory`] — a per-server memory budget/high-watermark tracker.

pub mod config;
pub mod cost;
pub mod memory;
pub mod metrics;
pub mod network;

pub use config::{ClusterConfig, MachineSpec};
pub use cost::{CostBreakdown, CostModel};
pub use memory::MemoryTracker;
pub use metrics::{ClusterMetrics, ServerMetrics, SuperstepReport};
pub use network::{BroadcastEncoding, BroadcastMessage, CommunicationMode, MessageCodec};
