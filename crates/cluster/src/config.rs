//! Cluster and machine descriptions.

use serde::{Deserialize, Serialize};

/// Hardware description of one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Worker threads per server (the paper's `T`, OpenMP threads).
    pub workers: u32,
    /// Main memory per server in bytes.
    pub memory_bytes: u64,
    /// Sequential disk read bandwidth in bytes/second (shared by all workers).
    pub disk_read_bw: f64,
    /// Sequential disk write bandwidth in bytes/second.
    pub disk_write_bw: f64,
    /// Per-request disk latency in seconds (seek + queueing), charged per read op.
    pub disk_latency: f64,
    /// Network bandwidth in bytes/second (full duplex, per server NIC).
    pub network_bw: f64,
    /// Per-message network latency in seconds.
    pub network_latency: f64,
    /// Edge processing rate of one worker in edges/second (gather+apply arithmetic).
    pub edges_per_second_per_worker: f64,
}

impl MachineSpec {
    /// The paper's testbed node: 12 cores (2× Xeon E5-2620), 128 GB RAM, 4×4 TB
    /// RAID5 HDDs (~310 MB/s sequential read), 10 Gbps Ethernet.
    pub fn paper_testbed() -> Self {
        Self {
            workers: 12,
            memory_bytes: 128 * 1024 * 1024 * 1024,
            disk_read_bw: 310.0e6,
            disk_write_bw: 200.0e6,
            disk_latency: 8.0e-3,
            network_bw: 1.25e9, // 10 Gbps
            network_latency: 100.0e-6,
            edges_per_second_per_worker: 120.0e6,
        }
    }

    /// A deliberately small machine for tests (tiny memory so spilling paths trigger).
    pub fn tiny(memory_bytes: u64) -> Self {
        Self {
            workers: 2,
            memory_bytes,
            disk_read_bw: 100.0e6,
            disk_write_bw: 80.0e6,
            disk_latency: 5.0e-3,
            network_bw: 1.0e9,
            network_latency: 50.0e-6,
            edges_per_second_per_worker: 50.0e6,
        }
    }
}

/// A cluster: `num_servers` identical machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub num_servers: u32,
    /// Per-server hardware.
    pub machine: MachineSpec,
}

impl ClusterConfig {
    /// A cluster of `num_servers` paper-testbed nodes (the evaluation uses 1, 3, 6, 9).
    pub fn paper_testbed(num_servers: u32) -> Self {
        assert!(num_servers > 0, "cluster must have at least one server");
        Self {
            num_servers,
            machine: MachineSpec::paper_testbed(),
        }
    }

    /// A small test cluster with the given per-server memory.
    pub fn tiny(num_servers: u32, memory_bytes: u64) -> Self {
        assert!(num_servers > 0, "cluster must have at least one server");
        Self {
            num_servers,
            machine: MachineSpec::tiny(memory_bytes),
        }
    }

    /// The same cluster with a different per-server worker count (the paper's
    /// `T`). This feeds both the cost model (edge-processing rate scales with
    /// workers) and the *default* tile-phase thread count when
    /// `GraphHConfig::threads_per_server` is unset; to vary real threads
    /// without touching the simulated cost, use
    /// `GraphHConfig::with_threads_per_server` instead (the bench axis does).
    pub fn with_workers(mut self, workers: u32) -> Self {
        assert!(workers > 0, "each server needs at least one worker thread");
        self.machine.workers = workers;
        self
    }

    /// Total workers across the cluster (the paper's `T × N`).
    pub fn total_workers(&self) -> u32 {
        self.num_servers * self.machine.workers
    }

    /// Total memory across the cluster in bytes.
    pub fn total_memory_bytes(&self) -> u64 {
        u64::from(self.num_servers) * self.machine.memory_bytes
    }

    /// The expected Pregel-style message combining ratio η for a graph with the given
    /// average degree (footnote 3 of the paper):
    /// `η ≈ (1 − exp(−d_avg / (T·N))) · (T·N) / d_avg`.
    pub fn combining_ratio(&self, avg_degree: f64) -> f64 {
        if avg_degree <= 0.0 {
            return 1.0;
        }
        let tn = f64::from(self.total_workers());
        ((1.0 - (-avg_degree / tn).exp()) * tn / avg_degree).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_description() {
        let c = ClusterConfig::paper_testbed(9);
        assert_eq!(c.num_servers, 9);
        assert_eq!(c.machine.workers, 12);
        assert_eq!(c.machine.memory_bytes, 128 * 1024 * 1024 * 1024);
        assert_eq!(c.total_workers(), 108);
        assert_eq!(c.total_memory_bytes(), 9 * 128 * 1024 * 1024 * 1024);
    }

    #[test]
    fn combining_ratio_matches_paper_example() {
        // Paper footnote: EU-2015 (d_avg = 85.7) on 9 nodes with 216 workers → η ≈ 0.82.
        let mut c = ClusterConfig::paper_testbed(9);
        c.machine.workers = 24;
        let eta = c.combining_ratio(85.7);
        assert!((eta - 0.82).abs() < 0.03, "eta = {eta}");
    }

    #[test]
    fn combining_ratio_bounds() {
        let c = ClusterConfig::paper_testbed(9);
        assert_eq!(c.combining_ratio(0.0), 1.0);
        // Very dense graphs combine almost everything away.
        assert!(c.combining_ratio(1e6) < 0.01);
        // Ratio is always in (0, 1].
        for d in [0.5, 5.0, 50.0, 500.0] {
            let eta = c.combining_ratio(d);
            assert!(eta > 0.0 && eta <= 1.0);
        }
    }

    #[test]
    fn with_workers_overrides_machine_workers() {
        let c = ClusterConfig::paper_testbed(3).with_workers(4);
        assert_eq!(c.machine.workers, 4);
        assert_eq!(c.total_workers(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ClusterConfig::paper_testbed(1).with_workers(0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = ClusterConfig::paper_testbed(0);
    }
}
