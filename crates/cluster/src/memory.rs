//! Per-server memory accounting.
//!
//! The engines do not allocate the paper-scale arrays; they *account* for what a
//! server would hold (vertex state arrays, message buffers, resident tiles, cache
//! contents) so Figure 1a / Figure 6b style numbers can be reported and so the edge
//! cache knows how much idle memory it may use.

use serde::{Deserialize, Serialize};

/// Tracks current and peak memory use of one simulated server, against a capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryTracker {
    capacity: u64,
    current: u64,
    peak: u64,
    /// Named components (e.g. "vertex-states", "messages", "edge-cache") for reporting.
    components: Vec<(String, u64)>,
}

impl MemoryTracker {
    /// A tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            current: 0,
            peak: 0,
            components: Vec::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently accounted bytes.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes still free before hitting capacity (0 if over).
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.current)
    }

    /// Whether the accounted total exceeds capacity.
    pub fn over_capacity(&self) -> bool {
        self.current > self.capacity
    }

    /// Register a named long-lived component (replacing any previous registration of
    /// the same name).
    pub fn set_component(&mut self, name: &str, bytes: u64) {
        if let Some(entry) = self.components.iter_mut().find(|(n, _)| n == name) {
            self.current = self.current - entry.1 + bytes;
            entry.1 = bytes;
        } else {
            self.components.push((name.to_string(), bytes));
            self.current += bytes;
        }
        self.peak = self.peak.max(self.current);
    }

    /// Bytes registered under `name` (0 if absent).
    pub fn component(&self, name: &str) -> u64 {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, b)| *b)
    }

    /// Temporarily account `bytes` (e.g. a tile resident during processing), run `f`,
    /// then release. Peak still reflects the transient usage.
    pub fn with_transient<T>(&mut self, bytes: u64, f: impl FnOnce(&mut Self) -> T) -> T {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        let out = f(self);
        self.current -= bytes;
        out
    }

    /// All named components and their sizes.
    pub fn components(&self) -> &[(String, u64)] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_replace_not_double_count() {
        let mut t = MemoryTracker::new(1000);
        t.set_component("vertex-states", 100);
        t.set_component("messages", 50);
        assert_eq!(t.current(), 150);
        t.set_component("vertex-states", 300);
        assert_eq!(t.current(), 350);
        assert_eq!(t.component("vertex-states"), 300);
        assert_eq!(t.component("missing"), 0);
        assert_eq!(t.peak(), 350);
        assert_eq!(t.available(), 650);
        assert!(!t.over_capacity());
    }

    #[test]
    fn transient_usage_raises_peak_only() {
        let mut t = MemoryTracker::new(1000);
        t.set_component("base", 200);
        let result = t.with_transient(500, |inner| inner.current());
        assert_eq!(result, 700);
        assert_eq!(t.current(), 200);
        assert_eq!(t.peak(), 700);
    }

    #[test]
    fn over_capacity_detected() {
        let mut t = MemoryTracker::new(100);
        t.set_component("big", 150);
        assert!(t.over_capacity());
        assert_eq!(t.available(), 0);
    }

    #[test]
    fn shrinking_component_reduces_current_but_not_peak() {
        let mut t = MemoryTracker::new(1000);
        t.set_component("cache", 800);
        t.set_component("cache", 100);
        assert_eq!(t.current(), 100);
        assert_eq!(t.peak(), 800);
    }
}
