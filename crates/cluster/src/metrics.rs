//! Per-server and per-superstep work counters.
//!
//! Engines record everything they do into a [`ServerMetrics`] per simulated server;
//! at the end of a superstep the cost model turns the counters into time and the
//! experiment harness records them for the figures (network traffic for Fig. 8,
//! memory for Fig. 1a/6b, cache hit ratio for Fig. 7b, …).

use serde::{Deserialize, Serialize};

/// Work done by one server during one superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Edges processed by gather/scatter loops.
    pub edges_processed: u64,
    /// Bytes read from the server's local disk.
    pub disk_read_bytes: u64,
    /// Number of local-disk read operations (for latency accounting).
    pub disk_read_ops: u64,
    /// Bytes written to the server's local disk.
    pub disk_write_bytes: u64,
    /// Number of local-disk write operations.
    pub disk_write_ops: u64,
    /// Bytes sent over the network by this server.
    pub network_sent_bytes: u64,
    /// Bytes received over the network by this server.
    pub network_received_bytes: u64,
    /// Number of network messages sent.
    pub network_messages: u64,
    /// Bytes run through a decompressor, divided by that codec's throughput, summed —
    /// i.e. accumulated decompression *time* in seconds.
    pub decompress_seconds: f64,
    /// Bytes run through a compressor (same convention) in seconds.
    pub compress_seconds: f64,
    /// Vertices whose value changed this superstep on this server.
    pub vertices_updated: u64,
    /// Messages produced by vertex programs (before combining).
    pub messages_produced: u64,
    /// Edge-cache hits.
    pub cache_hits: u64,
    /// Edge-cache misses.
    pub cache_misses: u64,
    /// Tiles skipped thanks to the Bloom filter.
    pub tiles_skipped: u64,
    /// Tiles processed.
    pub tiles_processed: u64,
    /// Peak memory in use on this server during the superstep, in bytes.
    pub peak_memory_bytes: u64,
}

impl ServerMetrics {
    /// Merge another metrics record into this one (summing counters, taking the max
    /// of peak memory).
    pub fn merge(&mut self, other: &ServerMetrics) {
        self.edges_processed += other.edges_processed;
        self.disk_read_bytes += other.disk_read_bytes;
        self.disk_read_ops += other.disk_read_ops;
        self.disk_write_bytes += other.disk_write_bytes;
        self.disk_write_ops += other.disk_write_ops;
        self.network_sent_bytes += other.network_sent_bytes;
        self.network_received_bytes += other.network_received_bytes;
        self.network_messages += other.network_messages;
        self.decompress_seconds += other.decompress_seconds;
        self.compress_seconds += other.compress_seconds;
        self.vertices_updated += other.vertices_updated;
        self.messages_produced += other.messages_produced;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.tiles_skipped += other.tiles_skipped;
        self.tiles_processed += other.tiles_processed;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
    }

    /// Cache hit ratio (1.0 when the cache was never consulted).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Metrics for one superstep across the whole cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuperstepReport {
    /// Superstep index (0-based).
    pub superstep: u32,
    /// Per-server metrics, indexed by server id.
    pub servers: Vec<ServerMetrics>,
    /// Simulated wall-clock time of this superstep in seconds (set by the cost model).
    pub simulated_seconds: f64,
    /// Vertices updated across the cluster.
    pub total_vertices_updated: u64,
}

impl SuperstepReport {
    /// A report for `num_servers` servers with zeroed counters.
    pub fn new(superstep: u32, num_servers: u32) -> Self {
        Self {
            superstep,
            servers: vec![ServerMetrics::default(); num_servers as usize],
            simulated_seconds: 0.0,
            total_vertices_updated: 0,
        }
    }

    /// Total network bytes sent across all servers.
    pub fn total_network_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.network_sent_bytes).sum()
    }

    /// Total disk bytes read across all servers.
    pub fn total_disk_read_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.disk_read_bytes).sum()
    }

    /// Total disk bytes written across all servers.
    pub fn total_disk_write_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.disk_write_bytes).sum()
    }

    /// Total edges processed across all servers.
    pub fn total_edges_processed(&self) -> u64 {
        self.servers.iter().map(|s| s.edges_processed).sum()
    }

    /// Cluster-wide cache hit ratio.
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits: u64 = self.servers.iter().map(|s| s.cache_hits).sum();
        let misses: u64 = self.servers.iter().map(|s| s.cache_misses).sum();
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Maximum per-server peak memory this superstep.
    pub fn max_peak_memory_bytes(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| s.peak_memory_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Metrics for a whole run (all supersteps).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// One report per superstep, in order.
    pub supersteps: Vec<SuperstepReport>,
}

impl ClusterMetrics {
    /// Append a superstep report.
    pub fn push(&mut self, report: SuperstepReport) {
        self.supersteps.push(report);
    }

    /// Number of supersteps recorded.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total simulated time of the run in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.supersteps.iter().map(|s| s.simulated_seconds).sum()
    }

    /// Average simulated time per superstep, optionally skipping the first superstep
    /// (the paper excludes it because it includes graph loading).
    pub fn avg_seconds_per_superstep(&self, skip_first: bool) -> f64 {
        let skip = usize::from(skip_first && self.supersteps.len() > 1);
        let slice = &self.supersteps[skip..];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|s| s.simulated_seconds).sum::<f64>() / slice.len() as f64
    }

    /// Peak per-server memory over the whole run.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.supersteps
            .iter()
            .map(SuperstepReport::max_peak_memory_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total network traffic over the whole run.
    pub fn total_network_bytes(&self) -> u64 {
        self.supersteps
            .iter()
            .map(SuperstepReport::total_network_bytes)
            .sum()
    }

    /// Total disk traffic (read + write) over the whole run.
    pub fn total_disk_bytes(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.total_disk_read_bytes() + s.total_disk_write_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_memory() {
        let mut a = ServerMetrics {
            edges_processed: 10,
            disk_read_bytes: 100,
            peak_memory_bytes: 50,
            cache_hits: 1,
            ..Default::default()
        };
        let b = ServerMetrics {
            edges_processed: 5,
            disk_read_bytes: 20,
            peak_memory_bytes: 80,
            cache_misses: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.edges_processed, 15);
        assert_eq!(a.disk_read_bytes, 120);
        assert_eq!(a.peak_memory_bytes, 80);
        assert!((a.cache_hit_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn report_aggregates_servers() {
        let mut r = SuperstepReport::new(0, 3);
        r.servers[0].network_sent_bytes = 100;
        r.servers[1].network_sent_bytes = 200;
        r.servers[2].disk_read_bytes = 50;
        r.servers[2].peak_memory_bytes = 999;
        assert_eq!(r.total_network_bytes(), 300);
        assert_eq!(r.total_disk_read_bytes(), 50);
        assert_eq!(r.max_peak_memory_bytes(), 999);
        assert_eq!(r.cache_hit_ratio(), 1.0);
    }

    #[test]
    fn cluster_metrics_averages_skip_first_superstep() {
        let mut m = ClusterMetrics::default();
        for (i, secs) in [10.0, 2.0, 4.0].iter().enumerate() {
            let mut r = SuperstepReport::new(i as u32, 1);
            r.simulated_seconds = *secs;
            m.push(r);
        }
        assert_eq!(m.num_supersteps(), 3);
        assert!((m.total_seconds() - 16.0).abs() < 1e-9);
        assert!((m.avg_seconds_per_superstep(false) - 16.0 / 3.0).abs() < 1e-9);
        assert!((m.avg_seconds_per_superstep(true) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = ClusterMetrics::default();
        assert_eq!(m.avg_seconds_per_superstep(true), 0.0);
        assert_eq!(m.peak_memory_bytes(), 0);
    }
}
