//! Broadcast message encodings and the simulated broadcast channel (paper §IV-C).
//!
//! After a GraphH worker finishes a tile it broadcasts the *updated* vertex values of
//! that tile's target range to all other servers. The paper considers three ways to
//! encode such a message:
//!
//! * **dense** — one value slot per vertex in the tile's target range plus a bitmap of
//!   which slots actually changed; cheap when most vertices changed,
//! * **sparse** — explicit `(vertex id, value)` pairs; cheap when few changed,
//! * **hybrid** — per message, pick sparse when the *unchanged* fraction exceeds a
//!   threshold (0.8 in the paper), dense otherwise.
//!
//! Messages can additionally be compressed (snappy by default). The
//! [`MessageCodec`] encodes for real and meters the codec time into
//! [`ServerMetrics`]; both executors (the sequential reference loop and the
//! threaded runtime's channel plane) push every broadcast through it, so
//! Figure 8's traffic series are measured, not estimated.

use crate::metrics::ServerMetrics;
use graphh_compress::{Codec, CompressorScratch};
use graphh_graph::ids::VertexId;
use serde::{Deserialize, Serialize};

/// How a particular message ended up encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastEncoding {
    /// Dense value array + update bitmap.
    Dense,
    /// Explicit (id, value) pairs.
    Sparse,
}

/// The sender-side policy for choosing an encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationMode {
    /// Always dense.
    Dense,
    /// Always sparse.
    Sparse,
    /// Sparse when the unchanged fraction of the tile exceeds `sparsity_threshold`
    /// (the paper uses 0.8), dense otherwise.
    Hybrid {
        /// Unchanged-fraction threshold above which sparse encoding is used.
        sparsity_threshold: f64,
    },
}

impl Default for CommunicationMode {
    fn default() -> Self {
        CommunicationMode::Hybrid {
            sparsity_threshold: 0.8,
        }
    }
}

/// The validated header of a decoded broadcast message, returned by the
/// streaming [`BroadcastMessage::decode_each`] so receivers can bound the
/// advertised range against the graph without materializing the updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastHeader {
    /// How the message body was encoded.
    pub encoding: BroadcastEncoding,
    /// First vertex of the advertised target range.
    pub range_start: VertexId,
    /// One past the last vertex of the advertised target range.
    pub range_end: VertexId,
    /// Number of updates the message carried (already verified against the
    /// body).
    pub count: u32,
}

/// A broadcast payload: updated values for vertices inside `[range_start, range_end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastMessage {
    /// First vertex of the tile's target range.
    pub range_start: VertexId,
    /// One past the last vertex of the tile's target range.
    pub range_end: VertexId,
    /// Updated `(vertex, value)` pairs; vertex ids must lie inside the range and be
    /// strictly increasing.
    pub updates: Vec<(VertexId, f64)>,
}

impl BroadcastMessage {
    /// Create a message, checking the updates are sorted and inside the range.
    pub fn new(range_start: VertexId, range_end: VertexId, updates: Vec<(VertexId, f64)>) -> Self {
        debug_assert!(range_start <= range_end);
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "updates must be sorted"
        );
        debug_assert!(updates
            .iter()
            .all(|&(v, _)| v >= range_start && v < range_end));
        Self {
            range_start,
            range_end,
            updates,
        }
    }

    /// Number of vertices in the tile's target range.
    pub fn range_len(&self) -> u32 {
        self.range_end - self.range_start
    }

    /// Fraction of the range that did *not* change (the paper's "sparsity ratio").
    pub fn sparsity_ratio(&self) -> f64 {
        let n = self.range_len();
        if n == 0 {
            return 1.0;
        }
        1.0 - self.updates.len() as f64 / f64::from(n)
    }

    /// Pick the encoding `mode` prescribes for this message.
    pub fn choose_encoding(&self, mode: CommunicationMode) -> BroadcastEncoding {
        match mode {
            CommunicationMode::Dense => BroadcastEncoding::Dense,
            CommunicationMode::Sparse => BroadcastEncoding::Sparse,
            CommunicationMode::Hybrid { sparsity_threshold } => {
                if self.sparsity_ratio() > sparsity_threshold {
                    BroadcastEncoding::Sparse
                } else {
                    BroadcastEncoding::Dense
                }
            }
        }
    }

    /// Encode with an explicit encoding (header: tag, range, count).
    pub fn encode(&self, encoding: BroadcastEncoding) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(encoding, &mut out);
        out
    }

    /// [`BroadcastMessage::encode`] into a caller-owned buffer, byte-identical
    /// to the allocating API: `out` is cleared, [`Self::encoded_size`] is
    /// reserved up front, and the dense bitmap + value array are written
    /// directly into `out` — no intermediate bitmap or value vector exists.
    /// With a reused `out` a steady-state encode performs zero heap
    /// allocation.
    ///
    /// ```
    /// use graphh_cluster::{BroadcastEncoding, BroadcastMessage};
    ///
    /// let m = BroadcastMessage::new(0, 16, vec![(3, 1.5), (9, -2.0)]);
    /// let mut wire = Vec::new();
    /// for encoding in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
    ///     m.encode_into(encoding, &mut wire); // reuses `wire`'s allocation
    ///     assert_eq!(wire, m.encode(encoding));
    ///     assert_eq!(wire.len() as u64, m.encoded_size(encoding));
    /// }
    /// ```
    pub fn encode_into(&self, encoding: BroadcastEncoding, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.encoded_size(encoding) as usize);
        out.push(match encoding {
            BroadcastEncoding::Dense => 0u8,
            BroadcastEncoding::Sparse => 1u8,
        });
        out.extend_from_slice(&self.range_start.to_le_bytes());
        out.extend_from_slice(&self.range_end.to_le_bytes());
        out.extend_from_slice(&(self.updates.len() as u32).to_le_bytes());
        match encoding {
            BroadcastEncoding::Dense => {
                let n = self.range_len() as usize;
                let bitmap_at = out.len();
                let values_at = bitmap_at + n.div_ceil(8);
                // Zero-fill the bitmap + value region in place (within the
                // reserved capacity), then patch the updated slots.
                out.resize(values_at + n * 8, 0);
                for &(v, val) in &self.updates {
                    let i = (v - self.range_start) as usize;
                    out[bitmap_at + i / 8] |= 1 << (i % 8);
                    out[values_at + i * 8..values_at + i * 8 + 8]
                        .copy_from_slice(&val.to_le_bytes());
                }
            }
            BroadcastEncoding::Sparse => {
                for &(v, val) in &self.updates {
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&val.to_le_bytes());
                }
            }
        }
    }

    /// Decode a message previously produced by [`BroadcastMessage::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        let mut updates = Vec::new();
        let header = Self::decode_each(data, |v, val| updates.push((v, val)))?;
        Ok(Self {
            range_start: header.range_start,
            range_end: header.range_end,
            updates,
        })
    }

    /// Streaming decode: validate the wire bytes exactly as
    /// [`BroadcastMessage::decode`] does (same error cases, same messages)
    /// and hand each `(vertex, value)` update to `visit` in id order, without
    /// materializing a `Vec<(VertexId, f64)>`. The dense path bit-scans the
    /// bitmap a `u64` word (64 slots) at a time, skipping all-zero words
    /// outright — on a sparse frontier that is most of the message — and
    /// walks set bits with `trailing_zeros`; remaining bytes past the last
    /// full word go through the same scan a byte at a time.
    ///
    /// On `Err`, `visit` may already have been called for a valid prefix of
    /// the updates; callers accumulating into a shared buffer must discard it
    /// (the engine aborts the run on any corrupt broadcast).
    ///
    /// ```
    /// use graphh_cluster::{BroadcastEncoding, BroadcastMessage};
    ///
    /// let m = BroadcastMessage::new(10, 20, vec![(11, 0.5), (19, 2.5)]);
    /// let wire = m.encode(BroadcastEncoding::Dense);
    /// let mut seen = Vec::new();
    /// let header = BroadcastMessage::decode_each(&wire, |v, val| seen.push((v, val))).unwrap();
    /// assert_eq!(seen, m.updates);
    /// assert_eq!((header.range_start, header.range_end, header.count), (10, 20, 2));
    /// ```
    pub fn decode_each(
        data: &[u8],
        mut visit: impl FnMut(VertexId, f64),
    ) -> Result<BroadcastHeader, String> {
        if data.len() < 13 {
            return Err("broadcast message too short".into());
        }
        let tag = data[0];
        let range_start = u32::from_le_bytes(data[1..5].try_into().unwrap());
        let range_end = u32::from_le_bytes(data[5..9].try_into().unwrap());
        let count = u32::from_le_bytes(data[9..13].try_into().unwrap()) as usize;
        if range_end < range_start {
            return Err("inverted range".into());
        }
        if count as u64 > u64::from(range_end - range_start) {
            return Err(format!(
                "update count {count} exceeds range length {}",
                range_end - range_start
            ));
        }
        let body = &data[13..];
        let encoding = match tag {
            0 => {
                let n = (range_end - range_start) as usize;
                let bitmap_len = n.div_ceil(8);
                if body.len() != bitmap_len + n * 8 {
                    return Err("dense body length mismatch".into());
                }
                let (bitmap, values) = body.split_at(bitmap_len);
                let mut visited = 0usize;
                let mut words = bitmap.chunks_exact(8);
                for (word_i, word) in words.by_ref().enumerate() {
                    let mut bits = u64::from_le_bytes(word.try_into().unwrap());
                    if bits == 0 {
                        // All 64 slots unchanged: skip the whole word.
                        continue;
                    }
                    let base = word_i * 64;
                    if n - base < 64 {
                        // Padding bits past `n` in the final word are ignored,
                        // exactly as a bit-by-bit loop never tested them.
                        bits &= (1u64 << (n - base)) - 1;
                    }
                    while bits != 0 {
                        let i = base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let val = f64::from_le_bytes(values[i * 8..i * 8 + 8].try_into().unwrap());
                        visit(range_start + i as u32, val);
                        visited += 1;
                    }
                }
                let tail_base = (bitmap_len / 8) * 64;
                for (byte_i, &byte) in words.remainder().iter().enumerate() {
                    if byte == 0 {
                        continue;
                    }
                    let base = tail_base + byte_i * 8;
                    let mut bits = byte;
                    if n - base < 8 {
                        bits &= (1u8 << (n - base)) - 1;
                    }
                    while bits != 0 {
                        let i = base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let val = f64::from_le_bytes(values[i * 8..i * 8 + 8].try_into().unwrap());
                        visit(range_start + i as u32, val);
                        visited += 1;
                    }
                }
                if visited != count {
                    return Err("dense bitmap count mismatch".into());
                }
                BroadcastEncoding::Dense
            }
            1 => {
                if body.len() != count * 12 {
                    return Err("sparse body length mismatch".into());
                }
                // Corrupt or malicious wire bytes must never reach
                // `apply_updates` (which indexes the replica array by vertex
                // id): ids must lie inside the advertised range and be
                // strictly increasing, exactly as `BroadcastMessage::new`
                // guarantees on the sender side.
                let mut last: Option<VertexId> = None;
                for chunk in body.chunks_exact(12) {
                    let v = u32::from_le_bytes(chunk[..4].try_into().unwrap());
                    let val = f64::from_le_bytes(chunk[4..].try_into().unwrap());
                    if v < range_start || v >= range_end {
                        return Err(format!(
                            "sparse vertex id {v} outside range [{range_start}, {range_end})"
                        ));
                    }
                    if let Some(prev) = last {
                        if v <= prev {
                            return Err(format!(
                                "sparse vertex ids not strictly increasing ({prev} then {v})"
                            ));
                        }
                    }
                    last = Some(v);
                    visit(v, val);
                }
                BroadcastEncoding::Sparse
            }
            other => return Err(format!("unknown encoding tag {other}")),
        };
        Ok(BroadcastHeader {
            encoding,
            range_start,
            range_end,
            count: count as u32,
        })
    }

    /// Size in bytes of the encoded message, without materialising it.
    pub fn encoded_size(&self, encoding: BroadcastEncoding) -> u64 {
        let header = 13u64;
        match encoding {
            BroadcastEncoding::Dense => {
                let n = u64::from(self.range_len());
                header + n.div_ceil(8) + n * 8
            }
            BroadcastEncoding::Sparse => header + self.updates.len() as u64 * 12,
        }
    }
}

/// The per-message wire path: encoding choice + optional compression, with the
/// codec time charged to the participating servers' metrics.
///
/// This is the piece both broadcast transports share: the sequential
/// reference executor runs it inline, and the threaded runtime
/// (`graphh-runtime`) runs it on both ends of a real channel, so Figure 8
/// traffic is metered per real message either way.
#[derive(Debug, Clone, Copy)]
pub struct MessageCodec {
    mode: CommunicationMode,
    compressor: Option<Codec>,
}

impl MessageCodec {
    /// A codec with the given encoding policy and message compressor.
    pub fn new(mode: CommunicationMode, compressor: Option<Codec>) -> Self {
        Self { mode, compressor }
    }

    /// The paper's default: hybrid encoding, snappy compression.
    pub fn paper_default() -> Self {
        Self::new(CommunicationMode::default(), Some(Codec::Snappy))
    }

    /// Encoding policy.
    pub fn mode(&self) -> CommunicationMode {
        self.mode
    }

    /// Message compressor (`None` and `Some(Raw)` both mean uncompressed).
    pub fn compressor(&self) -> Option<Codec> {
        self.compressor
    }

    /// Seconds of codec time a server is charged for pushing `bytes` through the
    /// compressor (the simulation prices both directions at the codec's
    /// decompression throughput).
    pub fn codec_seconds(&self, bytes: usize) -> f64 {
        match self.compressor {
            None | Some(Codec::Raw) => 0.0,
            Some(codec) => bytes as f64 / codec.decompress_throughput(),
        }
    }

    /// Encode `message` for the wire, charging compression time to `sender`.
    pub fn encode(
        &self,
        message: &BroadcastMessage,
        sender: &mut ServerMetrics,
    ) -> (Vec<u8>, BroadcastEncoding) {
        let mut scratch = Vec::new();
        let mut wire = Vec::new();
        let encoding = self.encode_into(message, sender, &mut scratch, &mut wire);
        (wire, encoding)
    }

    /// [`MessageCodec::encode`] into caller-owned buffers, producing
    /// byte-identical wire bytes in `wire`. On the uncompressed path the
    /// message is encoded straight into `wire` and `scratch` is untouched; on
    /// the compressed path the plain encoding lands in `scratch` and the
    /// compressed bytes in `wire`. Both buffers are cleared first — reuse
    /// them across messages and the steady-state uncompressed encode
    /// allocates nothing.
    ///
    /// ```
    /// use graphh_cluster::{BroadcastMessage, CommunicationMode, MessageCodec, ServerMetrics};
    ///
    /// let codec = MessageCodec::new(CommunicationMode::default(), None);
    /// let m = BroadcastMessage::new(0, 64, vec![(7, 1.0)]);
    /// let (mut scratch, mut wire) = (Vec::new(), Vec::new());
    /// let mut metrics = ServerMetrics::default();
    /// let encoding = codec.encode_into(&m, &mut metrics, &mut scratch, &mut wire);
    /// assert_eq!((wire.clone(), encoding), codec.encode(&m, &mut ServerMetrics::default()));
    /// ```
    pub fn encode_into(
        &self,
        message: &BroadcastMessage,
        sender: &mut ServerMetrics,
        scratch: &mut Vec<u8>,
        wire: &mut Vec<u8>,
    ) -> BroadcastEncoding {
        self.encode_into_with(
            message,
            sender,
            scratch,
            wire,
            &mut CompressorScratch::new(),
        )
    }

    /// [`MessageCodec::encode_into`] with caller-owned compressor state: the
    /// LZSS codecs reuse `comp`'s match-finder tables across messages instead
    /// of re-allocating them per call, so with all three of `scratch`, `wire`
    /// and `comp` reused the steady-state *compressed* encode allocates
    /// nothing either. Wire bytes, encoding choice and the metric charge are
    /// byte-for-byte identical to the per-call APIs; the uncompressed path
    /// leaves `comp` (and `scratch`) untouched.
    pub fn encode_into_with(
        &self,
        message: &BroadcastMessage,
        sender: &mut ServerMetrics,
        scratch: &mut Vec<u8>,
        wire: &mut Vec<u8>,
        comp: &mut CompressorScratch,
    ) -> BroadcastEncoding {
        let encoding = message.choose_encoding(self.mode);
        match self.compressor {
            None | Some(Codec::Raw) => message.encode_into(encoding, wire),
            Some(codec) => {
                message.encode_into(encoding, scratch);
                codec.compress_into_with(scratch, wire, comp);
                sender.compress_seconds += self.codec_seconds(scratch.len());
            }
        }
        encoding
    }

    /// Decode wire bytes produced by [`MessageCodec::encode`], charging
    /// decompression time to `receiver`.
    pub fn decode(
        &self,
        wire: &[u8],
        receiver: &mut ServerMetrics,
    ) -> Result<BroadcastMessage, String> {
        let decoded_bytes = match self.compressor {
            None | Some(Codec::Raw) => None,
            Some(codec) => {
                receiver.decompress_seconds += self.codec_seconds(wire.len());
                Some(codec.decompress(wire).map_err(|e| e.to_string())?)
            }
        };
        BroadcastMessage::decode(decoded_bytes.as_deref().unwrap_or(wire))
    }

    /// Streaming receive half of the hot path: decompress `wire` into
    /// `scratch` when a compressor is configured (charging the receiver
    /// exactly as [`MessageCodec::decode`] does), then validate and visit
    /// every update via [`BroadcastMessage::decode_each`] — no
    /// `BroadcastMessage` and no per-message update vector is materialized.
    /// On the uncompressed path `scratch` is untouched and nothing is
    /// allocated.
    ///
    /// On `Err`, `visit` may already have observed a valid prefix of the
    /// updates; callers accumulating into a shared buffer must discard it.
    pub fn decode_each(
        &self,
        wire: &[u8],
        receiver: &mut ServerMetrics,
        scratch: &mut Vec<u8>,
        visit: impl FnMut(VertexId, f64),
    ) -> Result<BroadcastHeader, String> {
        let data: &[u8] = match self.compressor {
            None | Some(Codec::Raw) => wire,
            Some(codec) => {
                receiver.decompress_seconds += self.codec_seconds(wire.len());
                codec
                    .decompress_into(wire, scratch)
                    .map_err(|e| e.to_string())?;
                scratch
            }
        };
        BroadcastMessage::decode_each(data, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(range: (u32, u32), updated: &[u32]) -> BroadcastMessage {
        BroadcastMessage::new(
            range.0,
            range.1,
            updated.iter().map(|&v| (v, f64::from(v) * 0.5)).collect(),
        )
    }

    #[test]
    fn dense_and_sparse_roundtrip() {
        let m = msg((100, 164), &[100, 101, 130, 163]);
        for enc in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
            let bytes = m.encode(enc);
            assert_eq!(bytes.len() as u64, m.encoded_size(enc));
            let back = BroadcastMessage::decode(&bytes).unwrap();
            assert_eq!(back.updates, m.updates);
            assert_eq!(back.range_start, 100);
            assert_eq!(back.range_end, 164);
        }
    }

    /// `encode_into` must agree byte-for-byte with `encode`, and the
    /// streaming `decode_each` must visit exactly what `decode` collects —
    /// across dense/sparse, empty updates, sparse-frontier dense messages
    /// (mostly all-zero bitmap bytes) and non-multiple-of-8 ranges (padding
    /// bits in the final bitmap byte).
    #[test]
    fn encode_into_and_decode_each_match_the_allocating_api() {
        let cases = [
            msg((100, 164), &[100, 101, 130, 163]),
            msg((0, 61), &[0, 7, 8, 57, 60]),
            msg((5, 5), &[]),
            msg((0, 1000), &[3]), // sparse frontier: zero-byte skip path
            msg((0, 1000), &(0..1000).collect::<Vec<_>>()),
            msg((32, 45), &[39]),
            msg((0, 64), &[0, 63]), // exactly one full bitmap word, no padding
            msg((0, 139), &[63, 64, 127, 128, 138]), // full words + byte tail with padding
        ];
        let mut wire = Vec::new();
        for m in &cases {
            for enc in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
                m.encode_into(enc, &mut wire); // `wire` reused across cases
                assert_eq!(wire, m.encode(enc));
                let mut visited = Vec::new();
                let header =
                    BroadcastMessage::decode_each(&wire, |v, val| visited.push((v, val))).unwrap();
                let decoded = BroadcastMessage::decode(&wire).unwrap();
                assert_eq!(visited, decoded.updates);
                assert_eq!(visited, m.updates);
                assert_eq!(header.encoding, enc);
                assert_eq!(header.range_start, m.range_start);
                assert_eq!(header.range_end, m.range_end);
                assert_eq!(header.count as usize, m.updates.len());
            }
        }
    }

    /// The corrupt-wire rejection suite must hold for the streaming decoder
    /// exactly as for `decode` (which is built on it): out-of-range ids,
    /// non-monotone ids, truncation, bad counts, garbage tags.
    #[test]
    fn decode_each_rejects_corrupt_wire() {
        let reject = |bytes: &[u8]| {
            BroadcastMessage::decode_each(bytes, |_, _| {}).expect_err("corrupt wire must error")
        };
        reject(&[]);
        reject(&[9u8; 13]); // unknown tag
        let mut truncated = msg((0, 8), &[2]).encode(BroadcastEncoding::Sparse);
        truncated.truncate(truncated.len() - 1);
        reject(&truncated);
        assert!(reject(&raw_sparse((10, 20), &[11, 25])).contains("outside range"));
        assert!(reject(&raw_sparse((0, 100), &[5, 3])).contains("strictly increasing"));
        reject(&raw_sparse((0, 100), &[7, 7]));
        assert!(reject(&raw_sparse((0, 2), &[0, 1, 0, 1])).contains("exceeds range"));
        // Dense count mismatch: claim 2 updates, set 1 bitmap bit.
        let mut dense = msg((0, 16), &[3]).encode(BroadcastEncoding::Dense);
        dense[9..13].copy_from_slice(&2u32.to_le_bytes());
        assert!(reject(&dense).contains("count mismatch"));
        // Dense padding bits past the range are ignored, not counted: a
        // 13-vertex range leaves 3 padding bits in its 2-byte bitmap.
        let mut padded = msg((0, 13), &[1]).encode(BroadcastEncoding::Dense);
        padded[13 + 1] |= 0b1110_0000; // second bitmap byte, bits 13..16
        let decoded = BroadcastMessage::decode(&padded).unwrap();
        assert_eq!(decoded.updates, vec![(1, 0.5)]);
    }

    #[test]
    fn sparse_wins_when_few_updates_dense_wins_when_many() {
        let few = msg((0, 1000), &[1, 5, 9]);
        assert!(
            few.encoded_size(BroadcastEncoding::Sparse)
                < few.encoded_size(BroadcastEncoding::Dense)
        );
        let all: Vec<u32> = (0..1000).collect();
        let many = msg((0, 1000), &all);
        assert!(
            many.encoded_size(BroadcastEncoding::Dense)
                < many.encoded_size(BroadcastEncoding::Sparse)
        );
    }

    #[test]
    fn hybrid_mode_switches_on_threshold() {
        let mode = CommunicationMode::default();
        // 10% updated → 90% unchanged > 0.8 → sparse.
        let sparse_case = msg((0, 100), &(0..10).collect::<Vec<_>>());
        assert_eq!(sparse_case.choose_encoding(mode), BroadcastEncoding::Sparse);
        // 90% updated → 10% unchanged < 0.8 → dense.
        let dense_case = msg((0, 100), &(0..90).collect::<Vec<_>>());
        assert_eq!(dense_case.choose_encoding(mode), BroadcastEncoding::Dense);
        assert_eq!(
            sparse_case.choose_encoding(CommunicationMode::Dense),
            BroadcastEncoding::Dense
        );
        assert_eq!(
            dense_case.choose_encoding(CommunicationMode::Sparse),
            BroadcastEncoding::Sparse
        );
    }

    #[test]
    fn sparsity_ratio_empty_range() {
        let m = msg((5, 5), &[]);
        assert_eq!(m.sparsity_ratio(), 1.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BroadcastMessage::decode(&[]).is_err());
        assert!(BroadcastMessage::decode(&[9u8; 13]).is_err());
        let m = msg((0, 8), &[2]);
        let mut bytes = m.encode(BroadcastEncoding::Sparse);
        bytes.truncate(bytes.len() - 1);
        assert!(BroadcastMessage::decode(&bytes).is_err());
    }

    /// Hand-craft a sparse wire message with arbitrary ids (bypassing the
    /// checks in `BroadcastMessage::new`).
    fn raw_sparse(range: (u32, u32), ids: &[u32]) -> Vec<u8> {
        let mut out = vec![1u8];
        out.extend_from_slice(&range.0.to_le_bytes());
        out.extend_from_slice(&range.1.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for &v in ids {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&1.0f64.to_le_bytes());
        }
        out
    }

    #[test]
    fn decode_rejects_out_of_range_sparse_ids() {
        // An id past range_end would index out of bounds in apply_updates.
        let err = BroadcastMessage::decode(&raw_sparse((10, 20), &[11, 25])).unwrap_err();
        assert!(err.contains("outside range"), "{err}");
        // An id below range_start is equally corrupt.
        assert!(BroadcastMessage::decode(&raw_sparse((10, 20), &[3])).is_err());
        // Boundary ids are fine: start inclusive, end exclusive.
        let ok = BroadcastMessage::decode(&raw_sparse((10, 20), &[10, 19])).unwrap();
        assert_eq!(ok.updates.len(), 2);
        assert!(BroadcastMessage::decode(&raw_sparse((10, 20), &[20])).is_err());
    }

    #[test]
    fn decode_rejects_unsorted_or_duplicate_sparse_ids() {
        let err = BroadcastMessage::decode(&raw_sparse((0, 100), &[5, 3])).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        assert!(BroadcastMessage::decode(&raw_sparse((0, 100), &[7, 7])).is_err());
    }

    #[test]
    fn decode_rejects_count_exceeding_range() {
        // 4 claimed updates cannot fit a 2-vertex range, whatever the body says.
        let err = BroadcastMessage::decode(&raw_sparse((0, 2), &[0, 1, 0, 1])).unwrap_err();
        assert!(err.contains("exceeds range"), "{err}");
    }

    #[test]
    fn message_codec_roundtrips_and_meters_codec_time() {
        let codec = MessageCodec::new(CommunicationMode::Sparse, None);
        let m = msg((0, 100), &[1, 2, 3]);
        let mut sender = ServerMetrics::default();
        let (wire, enc) = codec.encode(&m, &mut sender);
        assert_eq!(enc, BroadcastEncoding::Sparse);
        assert_eq!(wire.len() as u64, m.encoded_size(BroadcastEncoding::Sparse));
        // Uncompressed path charges no codec time.
        assert_eq!(sender.compress_seconds, 0.0);
        assert_eq!(codec.codec_seconds(wire.len()), 0.0);
        let mut receiver = ServerMetrics::default();
        let decoded = codec.decode(&wire, &mut receiver).unwrap();
        assert_eq!(decoded.updates, m.updates);
        assert_eq!(receiver.decompress_seconds, 0.0);
    }

    #[test]
    fn compression_reduces_wire_bytes_for_dense_messages() {
        // A dense message full of identical values compresses extremely well.
        let all: Vec<u32> = (0..4096).collect();
        let m = BroadcastMessage::new(0, 4096, all.iter().map(|&v| (v, 1.0)).collect());
        let raw = MessageCodec::new(CommunicationMode::Dense, None);
        let snappy = MessageCodec::new(CommunicationMode::Dense, Some(Codec::Snappy));
        let mut s_raw = ServerMetrics::default();
        let mut s_snappy = ServerMetrics::default();
        let (raw_wire, _) = raw.encode(&m, &mut s_raw);
        let (snappy_wire, _) = snappy.encode(&m, &mut s_snappy);
        assert!(snappy_wire.len() < raw_wire.len() / 2);
        assert!(s_snappy.compress_seconds > 0.0);
        let mut receiver = ServerMetrics::default();
        let decoded = snappy.decode(&snappy_wire, &mut receiver).unwrap();
        assert_eq!(decoded.updates.len(), 4096);
        assert!(receiver.decompress_seconds > 0.0);
        // Corrupt wire bytes surface as an error, not a panic.
        assert!(snappy.decode(&[0xFF; 32], &mut receiver).is_err());
    }

    /// The scratch-threaded codec paths must produce byte-identical wire
    /// bytes, identical metric charges, and identical decode results to the
    /// allocating path — for every compressor, with dirty reused buffers and
    /// a warm `CompressorScratch` carried across all messages and codecs.
    #[test]
    fn message_codec_into_paths_match_allocating_paths() {
        let messages = [
            msg((0, 512), &(0..480).collect::<Vec<_>>()), // hybrid → dense
            msg((0, 512), &[1, 99, 500]),                 // hybrid → sparse
        ];
        let compressors: [Option<Codec>; 6] = [
            None,
            Some(Codec::Raw),
            Some(Codec::Snappy),
            Some(Codec::Zlib1),
            Some(Codec::Zlib3),
            Some(Codec::VarintDelta),
        ];
        let mut enc_scratch = Vec::new();
        let mut wire = Vec::new();
        let mut dec_scratch = Vec::new();
        let mut comp = CompressorScratch::new();
        for compressor in compressors {
            let codec = MessageCodec::new(CommunicationMode::default(), compressor);
            for m in &messages {
                let mut s1 = ServerMetrics::default();
                let mut s2 = ServerMetrics::default();
                let (old_wire, old_enc) = codec.encode(m, &mut s1);
                let new_enc = codec.encode_into(m, &mut s2, &mut enc_scratch, &mut wire);
                assert_eq!(wire, old_wire);
                assert_eq!(new_enc, old_enc);
                assert_eq!(s1.compress_seconds, s2.compress_seconds);

                // Same again through the persistent-compressor-state entry
                // point, with the scratch deliberately warm from whatever
                // codec ran before.
                let mut s3 = ServerMetrics::default();
                let with_enc =
                    codec.encode_into_with(m, &mut s3, &mut enc_scratch, &mut wire, &mut comp);
                assert_eq!(wire, old_wire);
                assert_eq!(with_enc, old_enc);
                assert_eq!(s1.compress_seconds, s3.compress_seconds);

                let mut r1 = ServerMetrics::default();
                let mut r2 = ServerMetrics::default();
                let old_decoded = codec.decode(&wire, &mut r1).unwrap();
                let mut visited = Vec::new();
                let header = codec
                    .decode_each(&wire, &mut r2, &mut dec_scratch, |v, val| {
                        visited.push((v, val));
                    })
                    .unwrap();
                assert_eq!(visited, old_decoded.updates);
                assert_eq!(header.range_start, old_decoded.range_start);
                assert_eq!(header.range_end, old_decoded.range_end);
                assert_eq!(r1.decompress_seconds, r2.decompress_seconds);
            }
            // Corrupt wire bytes error through the streaming path too.
            if compressor.is_some_and(|c| c != Codec::Raw) {
                let mut r = ServerMetrics::default();
                assert!(codec
                    .decode_each(&[0xFF; 32], &mut r, &mut dec_scratch, |_, _| {})
                    .is_err());
            }
        }
    }

    #[test]
    fn paper_default_is_hybrid_snappy() {
        let c = MessageCodec::paper_default();
        assert!(matches!(
            c.mode(),
            CommunicationMode::Hybrid { sparsity_threshold } if (sparsity_threshold - 0.8).abs() < 1e-9
        ));
    }
}
