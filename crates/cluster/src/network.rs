//! Broadcast message encodings and the simulated broadcast channel (paper §IV-C).
//!
//! After a GraphH worker finishes a tile it broadcasts the *updated* vertex values of
//! that tile's target range to all other servers. The paper considers three ways to
//! encode such a message:
//!
//! * **dense** — one value slot per vertex in the tile's target range plus a bitmap of
//!   which slots actually changed; cheap when most vertices changed,
//! * **sparse** — explicit `(vertex id, value)` pairs; cheap when few changed,
//! * **hybrid** — per message, pick sparse when the *unchanged* fraction exceeds a
//!   threshold (0.8 in the paper), dense otherwise.
//!
//! Messages can additionally be compressed (snappy by default). The
//! [`BroadcastChannel`] encodes for real, meters the bytes into [`ServerMetrics`],
//! and hands the decoded updates back, so Figure 8's traffic series are measured,
//! not estimated.

use crate::metrics::ServerMetrics;
use graphh_compress::Codec;
use graphh_graph::ids::VertexId;
use serde::{Deserialize, Serialize};

/// How a particular message ended up encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastEncoding {
    /// Dense value array + update bitmap.
    Dense,
    /// Explicit (id, value) pairs.
    Sparse,
}

/// The sender-side policy for choosing an encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationMode {
    /// Always dense.
    Dense,
    /// Always sparse.
    Sparse,
    /// Sparse when the unchanged fraction of the tile exceeds `sparsity_threshold`
    /// (the paper uses 0.8), dense otherwise.
    Hybrid {
        /// Unchanged-fraction threshold above which sparse encoding is used.
        sparsity_threshold: f64,
    },
}

impl Default for CommunicationMode {
    fn default() -> Self {
        CommunicationMode::Hybrid {
            sparsity_threshold: 0.8,
        }
    }
}

/// A broadcast payload: updated values for vertices inside `[range_start, range_end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastMessage {
    /// First vertex of the tile's target range.
    pub range_start: VertexId,
    /// One past the last vertex of the tile's target range.
    pub range_end: VertexId,
    /// Updated `(vertex, value)` pairs; vertex ids must lie inside the range and be
    /// strictly increasing.
    pub updates: Vec<(VertexId, f64)>,
}

impl BroadcastMessage {
    /// Create a message, checking the updates are sorted and inside the range.
    pub fn new(range_start: VertexId, range_end: VertexId, updates: Vec<(VertexId, f64)>) -> Self {
        debug_assert!(range_start <= range_end);
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0), "updates must be sorted");
        debug_assert!(updates
            .iter()
            .all(|&(v, _)| v >= range_start && v < range_end));
        Self {
            range_start,
            range_end,
            updates,
        }
    }

    /// Number of vertices in the tile's target range.
    pub fn range_len(&self) -> u32 {
        self.range_end - self.range_start
    }

    /// Fraction of the range that did *not* change (the paper's "sparsity ratio").
    pub fn sparsity_ratio(&self) -> f64 {
        let n = self.range_len();
        if n == 0 {
            return 1.0;
        }
        1.0 - self.updates.len() as f64 / f64::from(n)
    }

    /// Pick the encoding `mode` prescribes for this message.
    pub fn choose_encoding(&self, mode: CommunicationMode) -> BroadcastEncoding {
        match mode {
            CommunicationMode::Dense => BroadcastEncoding::Dense,
            CommunicationMode::Sparse => BroadcastEncoding::Sparse,
            CommunicationMode::Hybrid { sparsity_threshold } => {
                if self.sparsity_ratio() > sparsity_threshold {
                    BroadcastEncoding::Sparse
                } else {
                    BroadcastEncoding::Dense
                }
            }
        }
    }

    /// Encode with an explicit encoding (header: tag, range, count).
    pub fn encode(&self, encoding: BroadcastEncoding) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(match encoding {
            BroadcastEncoding::Dense => 0u8,
            BroadcastEncoding::Sparse => 1u8,
        });
        out.extend_from_slice(&self.range_start.to_le_bytes());
        out.extend_from_slice(&self.range_end.to_le_bytes());
        out.extend_from_slice(&(self.updates.len() as u32).to_le_bytes());
        match encoding {
            BroadcastEncoding::Dense => {
                let n = self.range_len() as usize;
                let mut bitmap = vec![0u8; n.div_ceil(8)];
                let mut values = vec![0f64; n];
                for &(v, val) in &self.updates {
                    let i = (v - self.range_start) as usize;
                    bitmap[i / 8] |= 1 << (i % 8);
                    values[i] = val;
                }
                out.extend_from_slice(&bitmap);
                for val in values {
                    out.extend_from_slice(&val.to_le_bytes());
                }
            }
            BroadcastEncoding::Sparse => {
                for &(v, val) in &self.updates {
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&val.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode a message previously produced by [`BroadcastMessage::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        if data.len() < 13 {
            return Err("broadcast message too short".into());
        }
        let tag = data[0];
        let range_start = u32::from_le_bytes(data[1..5].try_into().unwrap());
        let range_end = u32::from_le_bytes(data[5..9].try_into().unwrap());
        let count = u32::from_le_bytes(data[9..13].try_into().unwrap()) as usize;
        if range_end < range_start {
            return Err("inverted range".into());
        }
        let body = &data[13..];
        let mut updates = Vec::with_capacity(count);
        match tag {
            0 => {
                let n = (range_end - range_start) as usize;
                let bitmap_len = n.div_ceil(8);
                if body.len() != bitmap_len + n * 8 {
                    return Err("dense body length mismatch".into());
                }
                let (bitmap, values) = body.split_at(bitmap_len);
                for i in 0..n {
                    if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                        let val =
                            f64::from_le_bytes(values[i * 8..i * 8 + 8].try_into().unwrap());
                        updates.push((range_start + i as u32, val));
                    }
                }
                if updates.len() != count {
                    return Err("dense bitmap count mismatch".into());
                }
            }
            1 => {
                if body.len() != count * 12 {
                    return Err("sparse body length mismatch".into());
                }
                for chunk in body.chunks_exact(12) {
                    let v = u32::from_le_bytes(chunk[..4].try_into().unwrap());
                    let val = f64::from_le_bytes(chunk[4..].try_into().unwrap());
                    updates.push((v, val));
                }
            }
            other => return Err(format!("unknown encoding tag {other}")),
        }
        Ok(Self {
            range_start,
            range_end,
            updates,
        })
    }

    /// Size in bytes of the encoded message, without materialising it.
    pub fn encoded_size(&self, encoding: BroadcastEncoding) -> u64 {
        let header = 13u64;
        match encoding {
            BroadcastEncoding::Dense => {
                let n = u64::from(self.range_len());
                header + n.div_ceil(8) + n * 8
            }
            BroadcastEncoding::Sparse => header + self.updates.len() as u64 * 12,
        }
    }
}

/// The simulated broadcast channel: encodes, optionally compresses, meters traffic
/// and returns the decoded updates for delivery to the other servers' replicas.
#[derive(Debug, Clone)]
pub struct BroadcastChannel {
    num_servers: u32,
    mode: CommunicationMode,
    compressor: Option<Codec>,
}

impl BroadcastChannel {
    /// A channel for `num_servers` servers with the given encoding policy and message
    /// compressor (the paper's default is hybrid + snappy).
    pub fn new(num_servers: u32, mode: CommunicationMode, compressor: Option<Codec>) -> Self {
        assert!(num_servers > 0);
        Self {
            num_servers,
            mode,
            compressor,
        }
    }

    /// The paper's default configuration: hybrid encoding, snappy compression.
    pub fn paper_default(num_servers: u32) -> Self {
        Self::new(num_servers, CommunicationMode::default(), Some(Codec::Snappy))
    }

    /// Encoding policy.
    pub fn mode(&self) -> CommunicationMode {
        self.mode
    }

    /// Broadcast `message` from `sender_metrics`'s server to every other server.
    ///
    /// Returns the decoded updates (identical to the input, but round-tripped through
    /// the wire format so the encode/decode path is actually exercised) together with
    /// the encoding used. Traffic is charged to the sender's metrics; receivers are
    /// charged via `receiver_metrics`.
    pub fn broadcast(
        &self,
        message: &BroadcastMessage,
        sender_metrics: &mut ServerMetrics,
        receiver_metrics: &mut [ServerMetrics],
    ) -> (Vec<(VertexId, f64)>, BroadcastEncoding) {
        let encoding = message.choose_encoding(self.mode);
        let encoded = message.encode(encoding);
        let wire = match self.compressor {
            None | Some(Codec::Raw) => encoded.clone(),
            Some(codec) => {
                let compressed = codec.compress(&encoded);
                sender_metrics.compress_seconds +=
                    encoded.len() as f64 / codec.decompress_throughput();
                compressed
            }
        };
        let fanout = u64::from(self.num_servers - 1);
        sender_metrics.network_sent_bytes += wire.len() as u64 * fanout;
        sender_metrics.network_messages += fanout;
        for r in receiver_metrics.iter_mut() {
            r.network_received_bytes += wire.len() as u64;
            if let Some(codec) = self.compressor {
                if codec != Codec::Raw {
                    r.decompress_seconds += wire.len() as f64 / codec.decompress_throughput();
                }
            }
        }
        // Receivers decode the wire format.
        let decoded_bytes = match self.compressor {
            None | Some(Codec::Raw) => wire,
            Some(codec) => codec.decompress(&wire).expect("we just compressed this"),
        };
        let decoded = BroadcastMessage::decode(&decoded_bytes).expect("we just encoded this");
        (decoded.updates, encoding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(range: (u32, u32), updated: &[u32]) -> BroadcastMessage {
        BroadcastMessage::new(
            range.0,
            range.1,
            updated.iter().map(|&v| (v, f64::from(v) * 0.5)).collect(),
        )
    }

    #[test]
    fn dense_and_sparse_roundtrip() {
        let m = msg((100, 164), &[100, 101, 130, 163]);
        for enc in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
            let bytes = m.encode(enc);
            assert_eq!(bytes.len() as u64, m.encoded_size(enc));
            let back = BroadcastMessage::decode(&bytes).unwrap();
            assert_eq!(back.updates, m.updates);
            assert_eq!(back.range_start, 100);
            assert_eq!(back.range_end, 164);
        }
    }

    #[test]
    fn sparse_wins_when_few_updates_dense_wins_when_many() {
        let few = msg((0, 1000), &[1, 5, 9]);
        assert!(few.encoded_size(BroadcastEncoding::Sparse) < few.encoded_size(BroadcastEncoding::Dense));
        let all: Vec<u32> = (0..1000).collect();
        let many = msg((0, 1000), &all);
        assert!(many.encoded_size(BroadcastEncoding::Dense) < many.encoded_size(BroadcastEncoding::Sparse));
    }

    #[test]
    fn hybrid_mode_switches_on_threshold() {
        let mode = CommunicationMode::default();
        // 10% updated → 90% unchanged > 0.8 → sparse.
        let sparse_case = msg((0, 100), &(0..10).collect::<Vec<_>>());
        assert_eq!(sparse_case.choose_encoding(mode), BroadcastEncoding::Sparse);
        // 90% updated → 10% unchanged < 0.8 → dense.
        let dense_case = msg((0, 100), &(0..90).collect::<Vec<_>>());
        assert_eq!(dense_case.choose_encoding(mode), BroadcastEncoding::Dense);
        assert_eq!(
            sparse_case.choose_encoding(CommunicationMode::Dense),
            BroadcastEncoding::Dense
        );
        assert_eq!(
            dense_case.choose_encoding(CommunicationMode::Sparse),
            BroadcastEncoding::Sparse
        );
    }

    #[test]
    fn sparsity_ratio_empty_range() {
        let m = msg((5, 5), &[]);
        assert_eq!(m.sparsity_ratio(), 1.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BroadcastMessage::decode(&[]).is_err());
        assert!(BroadcastMessage::decode(&[9u8; 13]).is_err());
        let m = msg((0, 8), &[2]);
        let mut bytes = m.encode(BroadcastEncoding::Sparse);
        bytes.truncate(bytes.len() - 1);
        assert!(BroadcastMessage::decode(&bytes).is_err());
    }

    #[test]
    fn channel_meters_fanout_traffic() {
        let channel = BroadcastChannel::new(4, CommunicationMode::Sparse, None);
        let m = msg((0, 100), &[1, 2, 3]);
        let mut sender = ServerMetrics::default();
        let mut receivers = vec![ServerMetrics::default(); 3];
        let (updates, enc) = channel.broadcast(&m, &mut sender, &mut receivers);
        assert_eq!(enc, BroadcastEncoding::Sparse);
        assert_eq!(updates, m.updates);
        let wire = m.encoded_size(BroadcastEncoding::Sparse);
        assert_eq!(sender.network_sent_bytes, wire * 3);
        assert_eq!(sender.network_messages, 3);
        for r in &receivers {
            assert_eq!(r.network_received_bytes, wire);
        }
    }

    #[test]
    fn compression_reduces_wire_bytes_for_dense_messages() {
        // A dense message full of identical values compresses extremely well.
        let all: Vec<u32> = (0..4096).collect();
        let m = BroadcastMessage::new(0, 4096, all.iter().map(|&v| (v, 1.0)).collect());
        let raw_channel = BroadcastChannel::new(2, CommunicationMode::Dense, None);
        let snappy_channel = BroadcastChannel::new(2, CommunicationMode::Dense, Some(Codec::Snappy));
        let mut s_raw = ServerMetrics::default();
        let mut s_snappy = ServerMetrics::default();
        let mut r = vec![ServerMetrics::default(); 1];
        raw_channel.broadcast(&m, &mut s_raw, &mut r);
        let mut r2 = vec![ServerMetrics::default(); 1];
        let (updates, _) = snappy_channel.broadcast(&m, &mut s_snappy, &mut r2);
        assert_eq!(updates.len(), 4096);
        assert!(s_snappy.network_sent_bytes < s_raw.network_sent_bytes / 2);
        assert!(r2[0].decompress_seconds > 0.0);
    }

    #[test]
    fn paper_default_is_hybrid_snappy() {
        let c = BroadcastChannel::paper_default(9);
        assert!(matches!(
            c.mode(),
            CommunicationMode::Hybrid { sparsity_threshold } if (sparsity_threshold - 0.8).abs() < 1e-9
        ));
    }
}
