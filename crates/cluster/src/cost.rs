//! The cost model: metered work → simulated time.
//!
//! A superstep under BSP finishes when the slowest server finishes (Algorithm 5
//! line 17, `wait_other_servers`). Each server's time is the sum of:
//!
//! * **compute** — edges processed divided by the aggregate worker rate,
//! * **disk** — bytes moved divided by the (shared) disk bandwidth plus a per-request
//!   latency charge,
//! * **network** — the larger of bytes sent / bytes received divided by the NIC
//!   bandwidth plus per-message latency (full-duplex NIC),
//! * **codec** — accumulated compression/decompression seconds (already time units).
//!
//! Compute overlaps poorly with disk in the paper's engines (a worker blocks on its
//! tile read), so the components are summed, which matches the paper's observation
//! that out-of-core engines are dominated by their disk term and GraphH by compute
//! once the cache is warm.

use crate::config::ClusterConfig;
use crate::metrics::{ServerMetrics, SuperstepReport};
use serde::{Deserialize, Serialize};

/// Time breakdown for one server in one superstep (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Gather/apply/scatter arithmetic.
    pub compute: f64,
    /// Local disk transfer + latency.
    pub disk: f64,
    /// Network transfer + latency.
    pub network: f64,
    /// Compression + decompression.
    pub codec: f64,
}

impl CostBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.disk + self.network + self.codec
    }
}

/// Converts [`ServerMetrics`] into simulated seconds for a given cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    config: ClusterConfig,
}

impl CostModel {
    /// A cost model for `config`.
    pub fn new(config: ClusterConfig) -> Self {
        Self { config }
    }

    /// The cluster configuration this model uses.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Time breakdown of one server's superstep.
    pub fn server_breakdown(&self, m: &ServerMetrics) -> CostBreakdown {
        let spec = self.config.machine;
        let compute =
            m.edges_processed as f64 / (spec.edges_per_second_per_worker * f64::from(spec.workers));
        let disk_bytes_time = m.disk_read_bytes as f64 / spec.disk_read_bw
            + m.disk_write_bytes as f64 / spec.disk_write_bw;
        let disk_latency_time = (m.disk_read_ops + m.disk_write_ops) as f64 * spec.disk_latency;
        let network_bytes = m.network_sent_bytes.max(m.network_received_bytes) as f64;
        let network =
            network_bytes / spec.network_bw + m.network_messages as f64 * spec.network_latency;
        CostBreakdown {
            compute,
            disk: disk_bytes_time + disk_latency_time,
            network,
            codec: m.compress_seconds + m.decompress_seconds,
        }
    }

    /// Simulated duration of a superstep: the slowest server's total (BSP barrier).
    pub fn superstep_seconds(&self, report: &SuperstepReport) -> f64 {
        report
            .servers
            .iter()
            .map(|m| self.server_breakdown(m).total())
            .fold(0.0, f64::max)
    }

    /// Fill in `report.simulated_seconds` and return it.
    pub fn finalize(&self, mut report: SuperstepReport) -> SuperstepReport {
        report.simulated_seconds = self.superstep_seconds(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(ClusterConfig::paper_testbed(3))
    }

    #[test]
    fn compute_only_server() {
        let m = ServerMetrics {
            edges_processed: 120_000_000 * 12, // exactly one second of all-worker compute
            ..Default::default()
        };
        let b = model().server_breakdown(&m);
        assert!((b.compute - 1.0).abs() < 1e-9);
        assert_eq!(b.disk, 0.0);
        assert_eq!(b.network, 0.0);
        assert!((b.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disk_term_includes_latency() {
        let m = ServerMetrics {
            disk_read_bytes: 310_000_000, // one second at RAID5 read bandwidth
            disk_read_ops: 10,
            ..Default::default()
        };
        let b = model().server_breakdown(&m);
        assert!((b.disk - (1.0 + 10.0 * 8.0e-3)).abs() < 1e-6);
    }

    #[test]
    fn network_is_full_duplex_max_of_directions() {
        let m = ServerMetrics {
            network_sent_bytes: 1_250_000_000,
            network_received_bytes: 600_000_000,
            network_messages: 0,
            ..Default::default()
        };
        let b = model().server_breakdown(&m);
        assert!((b.network - 1.0).abs() < 1e-6);
    }

    #[test]
    fn superstep_is_bounded_by_slowest_server() {
        let mut report = SuperstepReport::new(0, 3);
        report.servers[0].edges_processed = 1_000_000;
        report.servers[1].edges_processed = 100_000_000 * 12; // slowest
        report.servers[2].disk_read_bytes = 1000;
        let model = model();
        let t = model.superstep_seconds(&report);
        let slowest = model.server_breakdown(&report.servers[1]).total();
        assert!((t - slowest).abs() < 1e-12);
        let finalized = model.finalize(report);
        assert!((finalized.simulated_seconds - t).abs() < 1e-12);
    }

    #[test]
    fn codec_seconds_pass_through() {
        let m = ServerMetrics {
            decompress_seconds: 0.5,
            compress_seconds: 0.25,
            ..Default::default()
        };
        assert!((model().server_breakdown(&m).codec - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_core_disk_traffic_dominates_in_memory_compute() {
        // Sanity check of the shape the paper reports: streaming |E| edges from disk
        // costs far more than processing them in memory.
        let edges: u64 = 1_000_000_000;
        let in_memory = ServerMetrics {
            edges_processed: edges,
            ..Default::default()
        };
        let out_of_core = ServerMetrics {
            edges_processed: edges,
            disk_read_bytes: edges * 8,
            disk_read_ops: 100,
            ..Default::default()
        };
        let model = model();
        let t_mem = model.server_breakdown(&in_memory).total();
        let t_ooc = model.server_breakdown(&out_of_core).total();
        assert!(t_ooc > 10.0 * t_mem, "ooc {t_ooc} vs mem {t_mem}");
    }
}
